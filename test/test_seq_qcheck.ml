(* Property-based testing of block-delayed sequences: random operation
   pipelines compared against a list model, under random block sizes. *)

module S = Bds.Seq
open Bds_test_util

let () = init ()

(* A pipeline step on int sequences, with its list-model counterpart. *)
type step =
  | Map_add of int
  | Map_mod of int
  | Filter_mod of int * int
  | Filter_op_mod of int
  | Flat_expand of int
  | Scan_ex
  | Scan_incl
  | Zip_self
  | Force
  | Observe_sum
  | Mapi_add
  | Rev
  | Take_half
  | Drop_third
  | Append_self
  | Enumerate_sum

let apply_seq step s =
  match step with
  | Map_add k -> S.map (( + ) k) s
  | Map_mod k -> S.map (fun x -> x mod k) s
  | Filter_mod (k, r) -> S.filter (fun x -> (x mod k + k) mod k = r) s
  | Filter_op_mod k ->
    S.filter_op (fun x -> if (x mod k + k) mod k = 0 then Some (x + 1) else None) s
  | Flat_expand k -> S.flat_map (fun x -> S.tabulate (abs x mod k) (fun j -> x + j)) s
  | Scan_ex -> fst (S.scan ( + ) 0 s)
  | Scan_incl -> S.scan_incl ( + ) 0 s
  | Zip_self -> S.zip_with ( + ) s s
  | Force -> S.force s
  (* Consume the sequence once and keep using it: whatever the pipeline
     does next makes this BID doubly consumed, exercising the
     shared-consumer memo plan (the second consumer must see the same
     elements, not a re-run producer). *)
  | Observe_sum ->
    ignore (S.reduce ( + ) 0 s : int);
    s
  | Mapi_add -> S.mapi ( + ) s
  | Rev -> S.rev s
  | Take_half -> S.take s ((S.length s + 1) / 2)
  | Drop_third -> S.drop s (S.length s / 3)
  | Append_self -> S.append s s
  | Enumerate_sum -> S.map (fun (i, v) -> i + v) (S.enumerate s)

let apply_list step l =
  match step with
  | Map_add k -> List.map (( + ) k) l
  | Map_mod k -> List.map (fun x -> x mod k) l
  | Filter_mod (k, r) -> List.filter (fun x -> (x mod k + k) mod k = r) l
  | Filter_op_mod k ->
    List.filter_map (fun x -> if (x mod k + k) mod k = 0 then Some (x + 1) else None) l
  | Flat_expand k ->
    List.concat_map (fun x -> List.init (abs x mod k) (fun j -> x + j)) l
  | Scan_ex -> fst (list_scan ( + ) 0 l)
  | Scan_incl -> list_scan_incl ( + ) 0 l
  | Zip_self -> List.map (fun x -> x + x) l
  | Force -> l
  | Observe_sum -> l
  | Mapi_add -> List.mapi ( + ) l
  | Rev -> List.rev l
  | Take_half -> List.filteri (fun i _ -> i < (List.length l + 1) / 2) l
  | Drop_third -> List.filteri (fun i _ -> i >= List.length l / 3) l
  | Append_self -> l @ l
  | Enumerate_sum -> List.mapi ( + ) l

let step_gen =
  let open QCheck2.Gen in
  oneof
    [
      map (fun k -> Map_add k) (int_range (-10) 10);
      map (fun k -> Map_mod (k + 2)) (int_bound 10);
      map2 (fun k r -> Filter_mod (k + 2, r mod (k + 2))) (int_bound 6) (int_bound 10);
      map (fun k -> Filter_op_mod (k + 2)) (int_bound 6);
      map (fun k -> Flat_expand (k + 1)) (int_bound 2);
      return Scan_ex;
      return Scan_incl;
      return Zip_self;
      return Force;
      return Observe_sum;
      return Mapi_add;
      return Rev;
      return Take_half;
      return Drop_third;
      return Append_self;
      return Enumerate_sum;
    ]

(* Random block-size policy: mostly small Fixed sizes (the adversarial
   grids), plus Scaled shapes so the default-policy arithmetic is in the
   property net too. *)
let policy_gen =
  let open QCheck2.Gen in
  oneof
    [
      map (fun b -> Bds.Block.Fixed b) (int_range 1 40);
      map2
        (fun pw mn ->
          Bds.Block.Scaled
            { per_worker_blocks = pw + 1; min_size = mn + 1; max_size = mn + 64 })
        (int_bound 7) (int_bound 16);
    ]

let pipeline_gen =
  let open QCheck2.Gen in
  triple small_int_array (list_size (int_bound 6) step_gen) policy_gen

let prop_pipeline (a, steps, policy) =
  with_policy policy (fun () ->
      let s = List.fold_left (fun s st -> apply_seq st s) (S.of_array a) steps in
      let l = List.fold_left (fun l st -> apply_list st l) (Array.to_list a) steps in
      S.to_list s = l && S.length s = List.length l)

let prop_reduce_after_pipeline (a, steps, policy) =
  with_policy policy (fun () ->
      let s = List.fold_left (fun s st -> apply_seq st s) (S.of_array a) steps in
      let l = List.fold_left (fun l st -> apply_list st l) (Array.to_list a) steps in
      S.reduce ( + ) 0 s = List.fold_left ( + ) 0 l)

(* Filter after flatten: the skip-push filter runs over of_segments
   region blocks rather than array-backed ones — the chain the tentpole
   fuses end to end. *)
let prop_filter_after_flatten (a, bsize) =
  with_policy (Bds.Block.Fixed bsize) (fun () ->
      let mk x = S.tabulate (abs x mod 4) (fun j -> x - j) in
      let p x = x land 1 = 0 in
      let got = S.to_list (S.filter p (S.flat_map mk (S.of_array a))) in
      let expect =
        List.filter p
          (List.concat_map
             (fun x -> List.init (abs x mod 4) (fun j -> x - j))
             (Array.to_list a))
      in
      got = expect)

(* Doubly-consumed BID: reduce drives the producer once; to_array must
   observe the same elements via the shared-consumer memo (never a
   second producer run with different block state). *)
let prop_shared_consumption (a, steps, policy) =
  with_policy policy (fun () ->
      let s = List.fold_left (fun s st -> apply_seq st s) (S.of_array a) steps in
      let l = List.fold_left (fun l st -> apply_list st l) (Array.to_list a) steps in
      let r1 = S.reduce ( + ) 0 s in
      let arr = S.to_array s in
      let r2 = S.reduce ( + ) 0 s in
      r1 = List.fold_left ( + ) 0 l && Array.to_list arr = l && r1 = r2)

(* flatten . map ≡ concat_map *)
let prop_flatten (a, bsize) =
  with_policy (Bds.Block.Fixed bsize) (fun () ->
      let mk x = S.tabulate (abs x mod 5) (fun j -> x + j) in
      let got = S.to_list (S.flatten (S.map mk (S.of_array a))) in
      let expect =
        List.concat_map (fun x -> List.init (abs x mod 5) (fun j -> x + j)) (Array.to_list a)
      in
      got = expect)

(* Affine-composition scan (non-commutative monoid) against the list
   model, under random block sizes. *)
let prop_affine_scan (pairs, bsize) =
  with_policy (Bds.Block.Fixed bsize) (fun () ->
      let compose (a1, b1) (a2, b2) = (a1 * a2, (b1 * a2) + b2) in
      let arr = Array.map (fun (a, b) -> (a mod 3, b mod 5)) pairs in
      let got, gt = S.scan compose (1, 0) (S.of_array arr) in
      let expect, et = list_scan compose (1, 0) (Array.to_list arr) in
      S.to_list got = expect && gt = et)

(* filter distributes over map. *)
let prop_filter_map_commute (a, bsize) =
  with_policy (Bds.Block.Fixed bsize) (fun () ->
      let f x = (2 * x) + 1 in
      let p x = x > 0 in
      let lhs = S.to_list (S.filter p (S.map f (S.of_array a))) in
      let rhs = S.to_list (S.map f (S.filter (fun x -> p (f x)) (S.of_array a))) in
      lhs = rhs)

(* to_array . of_array = id; force is semantically the identity. *)
let prop_roundtrip (a, bsize) =
  with_policy (Bds.Block.Fixed bsize) (fun () ->
      S.to_array (S.of_array a) = a
      && S.to_list (S.force (S.filter (fun x -> x <> 0) (S.of_array a)))
         = S.to_list (S.filter (fun x -> x <> 0) (S.of_array a)))

let with_bsize g = QCheck2.Gen.(pair g (int_range 1 40))

(* Policy invariance: the observable result of a pipeline must not
   depend on the granularity knobs — block-size policy or leaf-grain
   override.  This is the contract of the unified granularity layer:
   knobs move work between blocks and chunks, never change answers. *)
let grid_points =
  List.concat_map
    (fun p -> List.map (fun g -> (p, g)) [ None; Some 1; Some 7 ])
    [
      Bds.Block.Fixed 1;
      Bds.Block.Fixed 3;
      Bds.Block.Fixed 17;
      Bds.Block.default_policy;
    ]

let prop_policy_invariance (a, steps) =
  let eval () =
    let s = List.fold_left (fun s st -> apply_seq st s) (S.of_array a) steps in
    (S.to_list s, S.reduce ( + ) 0 s)
  in
  let baseline = eval () in
  List.for_all
    (fun (p, g) -> with_policy p (fun () -> with_grain g eval) = baseline)
    grid_points

let prop_search_invariance (a, bsize) =
  with_policy (Bds.Block.Fixed bsize) (fun () ->
      let s = S.of_array a in
      let l = Array.to_list a in
      let p x = x land 3 = 0 in
      let model_index =
        let rec go i = function
          | [] -> None
          | x :: tl -> if p x then Some i else go (i + 1) tl
        in
        go 0 l
      in
      S.exists p s = List.exists p l
      && S.for_all p s = List.for_all p l
      && S.find_opt p s = List.find_opt p l
      && S.find_index p s = model_index)

let tests =
  let open QCheck2 in
  [
    Test.make ~name:"pipeline = list model" ~count:500 pipeline_gen prop_pipeline;
    Test.make ~name:"reduce after pipeline" ~count:300 pipeline_gen
      prop_reduce_after_pipeline;
    Test.make ~name:"filter after flatten" ~count:300 (with_bsize small_int_array)
      prop_filter_after_flatten;
    Test.make ~name:"doubly-consumed BID" ~count:200 pipeline_gen
      prop_shared_consumption;
    Test.make ~name:"flatten.map = concat_map" ~count:300 (with_bsize small_int_array)
      prop_flatten;
    Test.make ~name:"affine scan (non-commutative)" ~count:300
      (with_bsize (Gen.array_size (Gen.int_bound 150) (Gen.pair Gen.small_signed_int Gen.small_signed_int)))
      prop_affine_scan;
    Test.make ~name:"filter/map commute" ~count:300 (with_bsize small_int_array)
      prop_filter_map_commute;
    Test.make ~name:"roundtrips" ~count:300 (with_bsize small_int_array) prop_roundtrip;
    Test.make ~name:"policy invariance" ~count:60
      Gen.(pair small_int_array (list_size (int_bound 4) step_gen))
      prop_policy_invariance;
    Test.make ~name:"search = list model" ~count:300 (with_bsize small_int_array)
      prop_search_invariance;
  ]

(* Deterministic worker-count sweep: the fused filter/flatten chains and
   the shared-consumer plan must be invariant across pool sizes (the
   memo CAS and region splits race differently at 1/2/4 domains). *)
let test_domains_sweep () =
  let a = Array.init 3_000 (fun i -> (i * 53 mod 211) - 100) in
  let chains =
    [
      ("filter-chain", [ Map_add 7; Filter_mod (3, 1); Filter_op_mod 2; Scan_incl ]);
      ("flatten-filter", [ Flat_expand 3; Filter_mod (2, 0); Mapi_add ]);
      ("shared", [ Scan_ex; Observe_sum; Filter_mod (2, 1); Observe_sum ]);
      ("flatten-of-filter", [ Filter_op_mod 3; Flat_expand 2; Take_half ]);
    ]
  in
  Fun.protect
    ~finally:(fun () ->
      Bds_runtime.Runtime.set_num_domains Bds_test_util.domains)
    (fun () ->
      List.iter
        (fun d ->
          Bds_runtime.Runtime.set_num_domains d;
          List.iter
            (fun (pname, policy) ->
              with_policy policy (fun () ->
                  List.iter
                    (fun (cname, steps) ->
                      let tag = Printf.sprintf "d=%d %s %s" d pname cname in
                      let s =
                        List.fold_left
                          (fun s st -> apply_seq st s)
                          (S.of_array a) steps
                      in
                      let l =
                        List.fold_left
                          (fun l st -> apply_list st l)
                          (Array.to_list a) steps
                      in
                      Alcotest.(check int_list) tag l (S.to_list s))
                    chains))
            [ ("B=17", Bds.Block.Fixed 17); ("scaled", Bds.Block.default_policy) ])
        [ 1; 2; 4 ])

let () =
  Alcotest.run "seq_qcheck"
    [
      ("properties", List.map (QCheck_alcotest.to_alcotest ~long:false) tests);
      ( "domain sweep",
        [ Alcotest.test_case "fused chains across 1/2/4 domains" `Quick test_domains_sweep ] );
    ]
