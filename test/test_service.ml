(* The job-service layer: admission control, fair scheduling, deadlines,
   retry/backoff, circuit breaking, and graceful degradation.

   Everything here is bounded-time: no test waits on a job without a
   timeout, and the timeouts are generous enough for a loaded CI host
   while still catching a hang (the failure mode under test for the
   teardown suites).  Timing assertions check orders of magnitude, not
   cadences — a deadline-exceeded 50ms job must resolve well before its
   2s busy loop would, not within one scheduler tick. *)

module Service = Bds_service.Service
module Job = Bds_service.Job
module Backoff = Bds_service.Backoff
module Breaker = Bds_service.Breaker
module Fair_queue = Bds_service.Fair_queue
module Protocol = Bds_service.Protocol
module Runtime = Bds_runtime.Runtime
module Pool = Bds_runtime.Pool
module Chaos = Bds_runtime.Chaos
module Telemetry = Bds_runtime.Telemetry
open Bds_test_util

let () = init ()

(* Generous bound for "this job must resolve": catches hangs without
   flaking on slow hosts. *)
let wait_bound_s = 20.0

let wait_resolved what ticket =
  match Service.wait_timeout ticket wait_bound_s with
  | Some outcome -> outcome
  | None -> Alcotest.failf "%s: job #%d did not resolve" what (Service.id ticket)

let check_outcome what expected ticket =
  Alcotest.(check string) what expected (Job.pp_outcome (wait_resolved what ticket))

let submit_exn svc req =
  match Service.submit svc req with
  | Ok t -> t
  | Error (`Rejected r) -> Alcotest.failf "unexpected rejection: %s" (Job.reject_label r)
  | Error (`Bad_request m) -> Alcotest.failf "unexpected bad request: %s" m

let with_service ?config f =
  let svc = Service.create ?config () in
  Fun.protect ~finally:(fun () -> Service.shutdown svc) (fun () -> f svc)

(* ------------------------------------------------------------------ *)
(* Backoff                                                             *)

let test_backoff_deterministic () =
  let t = Backoff.default in
  List.iter
    (fun (seed, attempt) ->
      Alcotest.(check (float 0.0))
        "same seed+attempt, same delay"
        (Backoff.delay t ~seed ~attempt)
        (Backoff.delay t ~seed ~attempt))
    [ (1, 1); (1, 2); (42, 1); (42, 7) ]

let test_backoff_bounds () =
  let t = { Backoff.base_s = 0.01; factor = 2.0; max_s = 0.1; jitter = 0.5 } in
  for attempt = 1 to 12 do
    for seed = 0 to 20 do
      let d = Backoff.delay t ~seed ~attempt in
      Alcotest.(check bool) "positive" true (d > 0.0);
      Alcotest.(check bool)
        (Printf.sprintf "capped (attempt %d: %f)" attempt d)
        true
        (d <= t.Backoff.max_s *. (1.0 +. t.Backoff.jitter))
    done
  done;
  (* Pre-cap growth: attempt 2 lies in [2*base*(1-j), 2*base*(1+j)],
     disjoint from attempt 1's [base*(1-j), base*(1+j)] only when jitter
     is small; check means instead with jitter off. *)
  let nj = { t with Backoff.jitter = 0.0 } in
  Alcotest.(check (float 1e-9)) "attempt 1 is base" 0.01 (Backoff.delay nj ~seed:5 ~attempt:1);
  Alcotest.(check (float 1e-9)) "attempt 2 doubles" 0.02 (Backoff.delay nj ~seed:5 ~attempt:2);
  Alcotest.(check (float 1e-9)) "attempt 9 hits the cap" 0.1 (Backoff.delay nj ~seed:5 ~attempt:9)

let test_backoff_decorrelated () =
  (* Different seeds should not share a retry schedule (thundering
     herd); with 0.5 jitter two equal draws are vanishingly unlikely. *)
  let t = Backoff.default in
  let d1 = Backoff.delay t ~seed:1 ~attempt:1 in
  let d2 = Backoff.delay t ~seed:2 ~attempt:1 in
  Alcotest.(check bool) "seeds decorrelate" true (d1 <> d2)

(* ------------------------------------------------------------------ *)
(* Breaker                                                             *)

let bcfg =
  { Breaker.window = 8; min_samples = 4; failure_threshold = 0.5; cooldown_s = 0.05 }

let test_breaker_opens_on_failure_rate () =
  let b = Breaker.create bcfg in
  let now = 0.0 in
  Alcotest.(check string) "starts closed" "closed"
    (Breaker.state_label (Breaker.state b ~now));
  (* Below min_samples: failures alone do not trip it. *)
  Breaker.record b ~now ~ok:false;
  Breaker.record b ~now ~ok:false;
  Breaker.record b ~now ~ok:false;
  Alcotest.(check string) "not enough samples" "closed"
    (Breaker.state_label (Breaker.state b ~now));
  Alcotest.(check bool) "closed allows retries" true (Breaker.allow_retry b ~now);
  Breaker.record b ~now ~ok:false;
  Alcotest.(check string) "4/4 failures opens" "open"
    (Breaker.state_label (Breaker.state b ~now));
  Alcotest.(check bool) "open sheds retries" false (Breaker.allow_retry b ~now)

let test_breaker_half_open_probe () =
  let b = Breaker.create bcfg in
  for _ = 1 to 4 do
    Breaker.record b ~now:0.0 ~ok:false
  done;
  Alcotest.(check bool) "still open before cooldown" false
    (Breaker.allow_retry b ~now:0.01);
  let later = 0.2 in
  Alcotest.(check bool) "first probe allowed" true (Breaker.allow_retry b ~now:later);
  Alcotest.(check bool) "second probe shed" false (Breaker.allow_retry b ~now:later);
  (* Probe succeeds: breaker closes and the window clears. *)
  Breaker.record b ~now:later ~ok:true;
  Alcotest.(check string) "probe success closes" "closed"
    (Breaker.state_label (Breaker.state b ~now:later));
  Alcotest.(check bool) "closed again" true (Breaker.allow_retry b ~now:later)

let test_breaker_reopens_on_probe_failure () =
  let b = Breaker.create bcfg in
  for _ = 1 to 4 do
    Breaker.record b ~now:0.0 ~ok:false
  done;
  Alcotest.(check bool) "probe" true (Breaker.allow_retry b ~now:0.2);
  Breaker.record b ~now:0.2 ~ok:false;
  Alcotest.(check string) "probe failure reopens" "open"
    (Breaker.state_label (Breaker.state b ~now:0.21));
  Alcotest.(check bool) "sheds again" false (Breaker.allow_retry b ~now:0.21)

let test_breaker_mixed_rate_stays_closed () =
  let b = Breaker.create bcfg in
  (* One failure in four, so no prefix of the stream reaches the 0.5
     threshold once min_samples is met (the breaker evaluates on every
     record): 1/4, 2/8, sliding 2/8... *)
  for i = 0 to 7 do
    Breaker.record b ~now:0.0 ~ok:(i mod 4 <> 1)
  done;
  Alcotest.(check string) "below threshold" "closed"
    (Breaker.state_label (Breaker.state b ~now:0.0))

(* ------------------------------------------------------------------ *)
(* Fair queue                                                          *)

let test_fair_queue_round_robin () =
  let q = Fair_queue.create () in
  (* Tenant a floods before b and c arrive; service must interleave. *)
  List.iter (fun x -> ignore (Fair_queue.push q ~tenant:"a" x)) [ 1; 2; 3; 4 ];
  ignore (Fair_queue.push q ~tenant:"b" 10);
  ignore (Fair_queue.push q ~tenant:"c" 20);
  ignore (Fair_queue.push q ~tenant:"b" 11);
  Alcotest.(check int) "length" 7 (Fair_queue.length q);
  let order = List.init 7 (fun _ -> fst (Option.get (Fair_queue.take q))) in
  Alcotest.(check (list int))
    "round-robin across tenants, FIFO within"
    [ 1; 10; 20; 2; 11; 3; 4 ] order;
  Alcotest.(check (list (triple string int int)))
    "depths drained, high-water kept"
    [ ("a", 0, 4); ("b", 0, 2); ("c", 0, 1) ]
    (Fair_queue.depths q)

let test_fair_queue_close () =
  let q = Fair_queue.create () in
  Alcotest.(check bool) "push before close" true (Fair_queue.push q ~tenant:"a" 1);
  Fair_queue.close q;
  Alcotest.(check bool) "push after close" false (Fair_queue.push q ~tenant:"a" 2);
  Alcotest.(check (option int))
    "drains queued" (Some 1)
    (Option.map fst (Fair_queue.take q));
  Alcotest.(check (option int))
    "then None" None
    (Option.map fst (Fair_queue.take q))

let test_fair_queue_blocking_take () =
  let q = Fair_queue.create () in
  let got = Atomic.make None in
  let taker =
    Thread.create
      (fun () -> Atomic.set got (Option.map fst (Fair_queue.take q)))
      ()
  in
  Thread.delay 0.02;
  ignore (Fair_queue.push q ~tenant:"a" 99);
  Thread.join taker;
  Alcotest.(check (option int)) "blocked take woke" (Some 99) (Atomic.get got)

let test_fair_queue_drain () =
  let q = Fair_queue.create () in
  List.iter (fun x -> ignore (Fair_queue.push q ~tenant:"a" x)) [ 1; 2 ];
  ignore (Fair_queue.push q ~tenant:"b" 3);
  Alcotest.(check (list int)) "drain round-robin" [ 1; 3; 2 ] (Fair_queue.drain q);
  Alcotest.(check int) "empty after drain" 0 (Fair_queue.length q)

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)

let test_protocol_round_trip () =
  List.iter
    (fun line ->
      match Protocol.parse_command line with
      | Error e -> Alcotest.failf "parse %S: %s" line e
      | Ok cmd -> Alcotest.(check string) "round trip" line (Protocol.render_command cmd))
    [
      "SUBMIT sum n=1000";
      "SUBMIT busy tenant=alice deadline_ms=50 ms=2000";
      "POST fail retries=3 k=2";
      "WAIT 7";
      "STATS";
      "QUIT";
    ]

let test_protocol_reserved_keys () =
  match Protocol.parse_command "SUBMIT sum tenant=bob deadline_ms=40 retries=2 n=5" with
  | Error e -> Alcotest.fail e
  | Ok (Protocol.Submit r) ->
    Alcotest.(check string) "tenant" "bob" r.Job.tenant;
    Alcotest.(check (option int)) "deadline" (Some 40) r.Job.deadline_ms;
    Alcotest.(check (option int)) "retries" (Some 2) r.Job.retries;
    Alcotest.(check (list (pair string string))) "params" [ ("n", "5") ] r.Job.params
  | Ok _ -> Alcotest.fail "wrong command"

let test_protocol_errors () =
  List.iter
    (fun line ->
      match Protocol.parse_command line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse error for %S" line)
    [ ""; "FROB x"; "SUBMIT"; "SUBMIT sum n"; "SUBMIT sum =v"; "WAIT"; "WAIT x"; "STATS now" ]

let test_protocol_responses () =
  let cases =
    [
      (Protocol.render_outcome (Job.Completed "42"), Protocol.R_outcome (Job.Completed "42"));
      (Protocol.render_outcome (Job.Failed "boom boom"), Protocol.R_outcome (Job.Failed "boom boom"));
      (Protocol.render_outcome Job.Cancelled, Protocol.R_outcome Job.Cancelled);
      (Protocol.render_outcome Job.Deadline_exceeded, Protocol.R_outcome Job.Deadline_exceeded);
      (Protocol.render_reject Job.Overloaded, Protocol.R_rejected Job.Overloaded);
      (Protocol.render_reject Job.Shutting_down, Protocol.R_rejected Job.Shutting_down);
      (Protocol.render_accepted 12, Protocol.R_accepted 12);
      (Protocol.render_bad "no\nsuch", Protocol.R_bad "no such");
      ("BYE", Protocol.R_bye);
    ]
  in
  List.iter
    (fun (line, expected) ->
      match Protocol.parse_response line with
      | Error e -> Alcotest.failf "parse response %S: %s" line e
      | Ok r -> Alcotest.(check bool) line true (r = expected))
    cases

(* ------------------------------------------------------------------ *)
(* Service semantics                                                   *)

let test_submit_completes () =
  with_service (fun svc ->
      let echo = submit_exn svc (Job.request ~params:[ ("msg", "hi") ] "echo") in
      check_outcome "echo" "completed(hi)" echo;
      let sum = submit_exn svc (Job.request ~params:[ ("n", "10000") ] "sum") in
      (* Same pipeline Workload.sum_pipeline computes. *)
      let expected =
        Bds.Seq.(reduce ( + ) 0 (map (fun x -> (x * 7) land 1023) (iota 10000)))
      in
      check_outcome "sum" (Printf.sprintf "completed(%d)" expected) sum)

let test_bad_request () =
  with_service (fun svc ->
      (match Service.submit svc (Job.request "nosuch") with
      | Error (`Bad_request _) -> ()
      | _ -> Alcotest.fail "unknown kind must be Bad_request");
      match Service.submit svc (Job.request ~params:[ ("n", "banana") ] "sum") with
      | Error (`Bad_request _) -> ()
      | _ -> Alcotest.fail "malformed param must be Bad_request")

let test_terminal_failure () =
  with_service (fun svc ->
      let t = submit_exn svc (Job.request "boom") in
      match wait_resolved "boom" t with
      | Job.Failed msg ->
        Alcotest.(check bool) ("payload: " ^ msg) true
          (String.length msg > 0)
      | o -> Alcotest.failf "expected Failed, got %s" (Job.pp_outcome o))

let test_overloaded_typed_rejection () =
  let config = { Service.default_config with Service.capacity = 1; runners = 1 } in
  with_service ~config (fun svc ->
      let before = Telemetry.snapshot () in
      let first = submit_exn svc (Job.request ~params:[ ("ms", "100") ] "busy") in
      (match Service.submit svc (Job.request "echo") with
      | Error (`Rejected Job.Overloaded) -> ()
      | Ok _ -> Alcotest.fail "second job must be shed at capacity 1"
      | Error e ->
        Alcotest.failf "wrong rejection: %s"
          (match e with
          | `Rejected r -> Job.reject_label r
          | `Bad_request m -> m));
      let d = Telemetry.diff ~before ~after:(Telemetry.snapshot ()) in
      Alcotest.(check int) "shed counted" 1 d.Telemetry.s_jobs_shed;
      check_outcome "first still completes" "completed(busy 100ms)" first)

let test_deadline_running_job () =
  with_service (fun svc ->
      let t0 = Unix.gettimeofday () in
      let t =
        submit_exn svc (Job.request ~params:[ ("ms", "2000") ] ~deadline_ms:50 "busy")
      in
      check_outcome "deadline fires" "deadline_exceeded" t;
      let elapsed = Unix.gettimeofday () -. t0 in
      (* Must return promptly after the 50ms deadline — far before the
         2s busy loop.  0.5s leaves room for a loaded CI host. *)
      Alcotest.(check bool)
        (Printf.sprintf "returned in %.0fms" (elapsed *. 1000.))
        true (elapsed < 0.5))

let test_deadline_queued_job () =
  (* One runner occupied by a long busy job: the queued job's deadline
     passes while it waits, and the monitor resolves it directly without
     an attempt ever running. *)
  let config = { Service.default_config with Service.capacity = 8; runners = 1 } in
  with_service ~config (fun svc ->
      let blocker = submit_exn svc (Job.request ~params:[ ("ms", "300") ] "busy") in
      let t0 = Unix.gettimeofday () in
      let queued =
        submit_exn svc (Job.request ~params:[ ("n", "1000") ] ~deadline_ms:20 "sum")
      in
      check_outcome "queued job deadline" "deadline_exceeded" queued;
      let elapsed = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool)
        (Printf.sprintf "resolved while blocker still running (%.0fms)" (elapsed *. 1000.))
        true (elapsed < 0.25);
      check_outcome "blocker unaffected" "completed(busy 300ms)" blocker)

let test_cancel_running_job () =
  with_service (fun svc ->
      let t = submit_exn svc (Job.request ~params:[ ("ms", "2000") ] "busy") in
      Thread.delay 0.02;
      let t0 = Unix.gettimeofday () in
      Service.cancel svc t;
      check_outcome "cancelled" "cancelled" t;
      Alcotest.(check bool) "cancel is prompt" true (Unix.gettimeofday () -. t0 < 0.5))

let test_cancel_queued_job () =
  let config = { Service.default_config with Service.capacity = 8; runners = 1 } in
  with_service ~config (fun svc ->
      let blocker = submit_exn svc (Job.request ~params:[ ("ms", "100") ] "busy") in
      let queued = submit_exn svc (Job.request ~params:[ ("n", "1000") ] "sum") in
      Service.cancel svc queued;
      check_outcome "queued cancel is immediate" "cancelled" queued;
      check_outcome "blocker unaffected" "completed(busy 100ms)" blocker)

let test_retry_transient_then_success () =
  with_service (fun svc ->
      let before = Telemetry.snapshot () in
      let t =
        submit_exn svc (Job.request ~params:[ ("k", "2"); ("n", "1000") ] "fail")
      in
      (match wait_resolved "fail k=2" t with
      | Job.Completed _ -> ()
      | o -> Alcotest.failf "expected completion after retries, got %s" (Job.pp_outcome o));
      Alcotest.(check int) "used both retries" 2 (Service.For_testing.retries_used t);
      let d = Telemetry.diff ~before ~after:(Telemetry.snapshot ()) in
      Alcotest.(check int) "retries counted" 2 d.Telemetry.s_jobs_retried)

let test_retry_budget_exhausted () =
  with_service (fun svc ->
      let t =
        submit_exn svc
          (Job.request ~params:[ ("k", "99") ] ~retries:1 "fail")
      in
      match wait_resolved "fail k=99" t with
      | Job.Failed msg ->
        Alcotest.(check bool) ("mentions exhaustion: " ^ msg) true
          (String.length msg >= 17 && String.sub msg 0 17 = "retries exhausted")
      | o -> Alcotest.failf "expected Failed, got %s" (Job.pp_outcome o))

let test_breaker_sheds_retries () =
  (* A tiny window and a long cooldown: a burst of always-failing jobs
     trips the breaker, after which further retries are shed and the
     jobs fail fast with the typed retry-shed error. *)
  let config =
    {
      Service.default_config with
      Service.runners = 1;
      max_retries = 4;
      breaker =
        { Breaker.window = 4; min_samples = 2; failure_threshold = 0.5; cooldown_s = 60.0 };
    }
  in
  with_service ~config (fun svc ->
      let before = Telemetry.snapshot () in
      let tickets =
        List.init 4 (fun _ ->
            submit_exn svc (Job.request ~params:[ ("k", "99") ] "fail"))
      in
      let outcomes = List.map (wait_resolved "failing burst") tickets in
      let shed =
        List.filter
          (function
            | Job.Failed msg ->
              String.length msg >= 10 && String.sub msg 0 10 = "retry shed"
            | _ -> false)
          outcomes
      in
      Alcotest.(check bool) "breaker shed at least one retry" true (List.length shed >= 1);
      List.iter
        (function
          | Job.Failed _ -> ()
          | o -> Alcotest.failf "all must fail, got %s" (Job.pp_outcome o))
        outcomes;
      let d = Telemetry.diff ~before ~after:(Telemetry.snapshot ()) in
      Alcotest.(check bool) "retries_shed counted" true (d.Telemetry.s_jobs_retries_shed >= 1))

let test_on_complete_exactly_once () =
  with_service (fun svc ->
      let hits = Atomic.make 0 in
      let t =
        match
          Service.submit svc
            ~on_complete:(fun _ -> Atomic.incr hits)
            (Job.request ~params:[ ("msg", "cb") ] "echo")
        with
        | Ok t -> t
        | Error _ -> Alcotest.fail "submit failed"
      in
      ignore (wait_resolved "callback job" t);
      (* The callback runs on the resolving thread; give it a beat. *)
      let rec settle n =
        if Atomic.get hits = 0 && n > 0 then begin
          Thread.delay 0.01;
          settle (n - 1)
        end
      in
      settle 100;
      Alcotest.(check int) "exactly one callback" 1 (Atomic.get hits);
      Alcotest.(check int) "exactly one completion" 1 (Service.For_testing.completions t))

let test_shutdown_drains () =
  let svc = Service.create () in
  let tickets =
    List.init 8 (fun i ->
        submit_exn svc (Job.request ~params:[ ("n", string_of_int (1000 * (i + 1))) ] "sum"))
  in
  Service.shutdown svc;
  List.iter
    (fun t ->
      match Service.peek t with
      | Some (Job.Completed _) -> ()
      | Some o -> Alcotest.failf "drained job should complete, got %s" (Job.pp_outcome o)
      | None -> Alcotest.fail "job unresolved after drain shutdown")
    tickets;
  match Service.submit svc (Job.request "echo") with
  | Error (`Rejected Job.Shutting_down) -> ()
  | _ -> Alcotest.fail "submit after shutdown must be Shutting_down"

let test_shutdown_no_drain_cancels () =
  let config = { Service.default_config with Service.capacity = 16; runners = 1 } in
  let svc = Service.create ~config () in
  let blocker = submit_exn svc (Job.request ~params:[ ("ms", "100") ] "busy") in
  let queued =
    List.init 6 (fun _ -> submit_exn svc (Job.request ~params:[ ("ms", "100") ] "busy"))
  in
  Service.shutdown ~drain:false svc;
  (* Everything resolved; the queued jobs were cancelled, not run. *)
  List.iter
    (fun t ->
      match Service.peek t with
      | Some Job.Cancelled -> ()
      | Some o -> Alcotest.failf "queued job should cancel, got %s" (Job.pp_outcome o)
      | None -> Alcotest.fail "job unresolved after no-drain shutdown")
    queued;
  match Service.peek blocker with
  | Some (Job.Completed _ | Job.Cancelled) -> ()
  | Some o -> Alcotest.failf "blocker: unexpected %s" (Job.pp_outcome o)
  | None -> Alcotest.fail "blocker unresolved"

(* ------------------------------------------------------------------ *)
(* Degradation: pool death under the service                           *)

(* Every admitted job resolves to exactly one terminal outcome even when
   the backing pool is torn down / poisoned mid-flight, within a bounded
   time, and the service keeps serving afterwards on a healed pool. *)
let check_all_resolve_exactly_once what tickets =
  List.iter
    (fun t ->
      ignore (wait_resolved what t);
      Alcotest.(check int)
        (Printf.sprintf "%s: job #%d exactly-once" what (Service.id t))
        1
        (Service.For_testing.completions t))
    tickets

let mixed_request i =
  match i mod 4 with
  | 0 -> Job.request ~params:[ ("ms", "20") ] "busy"
  | 1 -> Job.request ~params:[ ("n", "20000") ] "sum"
  | 2 -> Job.request ~params:[ ("k", "1"); ("n", "1000") ] "fail"
  | _ -> Job.request ~params:[ ("ms", "30") ] ~deadline_ms:15 "busy"

let test_pool_teardown_with_inflight_jobs () =
  let config = { Service.default_config with Service.capacity = 64; runners = 4 } in
  let before = Telemetry.snapshot () in
  let svc = Service.create ~config () in
  let tickets = List.init 24 (fun i -> submit_exn svc (mixed_request i)) in
  (* Tear the shared pool down while jobs are queued and running. *)
  Thread.delay 0.01;
  Runtime.shutdown ();
  check_all_resolve_exactly_once "teardown" tickets;
  (* The service healed itself: new work completes. *)
  let after_death = submit_exn svc (Job.request ~params:[ ("msg", "alive") ] "echo") in
  check_outcome "keeps serving after teardown" "completed(alive)" after_death;
  Service.shutdown svc;
  let d = Telemetry.diff ~before ~after:(Telemetry.snapshot ()) in
  let resolved =
    d.Telemetry.s_jobs_completed + d.Telemetry.s_jobs_failed
    + d.Telemetry.s_jobs_cancelled + d.Telemetry.s_jobs_deadline_exceeded
  in
  Alcotest.(check int) "outcomes partition admitted jobs" d.Telemetry.s_jobs_admitted resolved

let test_worker_crash_fails_fast_and_heals () =
  let config = { Service.default_config with Service.capacity = 64; runners = 2 } in
  with_service ~config (fun svc ->
      let tickets =
        List.init 8 (fun _ -> submit_exn svc (Job.request ~params:[ ("ms", "50") ] "busy"))
      in
      Thread.delay 0.01;
      (* Crash a worker domain: an exception escapes the scheduler and
         poisons the pool. *)
      Pool.For_testing.inject_raw_task (Runtime.get_pool ()) (fun () ->
          failwith "injected worker crash");
      check_all_resolve_exactly_once "worker crash" tickets;
      (* In-flight jobs either completed before the poison landed or
         failed fast with a typed error — never hung, never lost. *)
      List.iter
        (fun t ->
          match Service.peek t with
          | Some (Job.Completed _ | Job.Failed _) -> ()
          | Some o -> Alcotest.failf "unexpected outcome %s" (Job.pp_outcome o)
          | None -> assert false)
        tickets;
      let after = submit_exn svc (Job.request ~params:[ ("msg", "healed") ] "echo") in
      check_outcome "keeps serving after crash" "completed(healed)" after)

(* ------------------------------------------------------------------ *)
(* Chaos: the jobs fault kind                                          *)

let with_chaos cfg f =
  let old = Chaos.config () in
  Chaos.set_config (Some cfg);
  Fun.protect ~finally:(fun () -> Chaos.set_config old) f

(* The acceptance-criteria stress: under jobs-kind chaos, every admitted
   job still reaches exactly one terminal outcome (retries absorb the
   injected cancels, deadlines still fire, nothing hangs or double
   completes). *)
let test_chaos_jobs_exactly_once () =
  with_chaos
    { Chaos.seed = 3; p = 0.3; kinds = [ Chaos.Jobs ] }
    (fun () ->
      let config = { Service.default_config with Service.capacity = 64; runners = 4 } in
      let before = Telemetry.snapshot () in
      with_service ~config (fun svc ->
          let tickets = List.init 40 (fun i -> submit_exn svc (mixed_request i)) in
          check_all_resolve_exactly_once "chaos jobs" tickets);
      let d = Telemetry.diff ~before ~after:(Telemetry.snapshot ()) in
      let resolved =
        d.Telemetry.s_jobs_completed + d.Telemetry.s_jobs_failed
        + d.Telemetry.s_jobs_cancelled + d.Telemetry.s_jobs_deadline_exceeded
      in
      Alcotest.(check int) "outcomes partition admitted jobs" d.Telemetry.s_jobs_admitted
        resolved)

(* Trace round trip: tracing a chaos run must yield one connected
   admit→outcome flow per admitted job — retries, injected cancels and
   deadline resolutions included.  Service.shutdown flushes the
   recorder, so the file is complete once with_service returns. *)
let test_chaos_trace_round_trip () =
  with_chaos
    { Chaos.seed = 5; p = 0.25; kinds = [ Chaos.Jobs ] }
    (fun () ->
      let module Trace = Bds_runtime.Trace in
      let path = Filename.temp_file "bds_service_trace" ".json" in
      Trace.set_output (Some path);
      Trace.reset ();
      let before = Telemetry.snapshot () in
      let config =
        { Service.default_config with Service.capacity = 64; runners = 4 }
      in
      Fun.protect ~finally:(fun () -> Trace.set_output None) (fun () ->
          with_service ~config (fun svc ->
              let tickets =
                List.init 24 (fun i -> submit_exn svc (mixed_request i))
              in
              check_all_resolve_exactly_once "traced chaos jobs" tickets));
      let d = Telemetry.diff ~before ~after:(Telemetry.snapshot ()) in
      (match Trace.flows_of_file path with
      | Error e -> Alcotest.fail ("trace unreadable: " ^ e)
      | Ok (flows, disconnected) ->
        Alcotest.(check (list int)) "every flow connected" [] disconnected;
        Alcotest.(check int)
          "one flow per admitted job" d.Telemetry.s_jobs_admitted flows);
      Sys.remove path)

let test_chaos_point_job_off_by_default () =
  with_chaos
    { Chaos.seed = 1; p = 1.0; kinds = [ Chaos.Delay; Chaos.Starve ] }
    (fun () ->
      (* The jobs fault point only fires for the jobs kind. *)
      for _ = 1 to 50 do
        match Chaos.point_job () with
        | `None -> ()
        | `Cancel _ | `Delay _ -> Alcotest.fail "point_job fired without jobs kind"
      done)

let test_chaos_point_job_fires () =
  with_chaos
    { Chaos.seed = 7; p = 1.0; kinds = [ Chaos.Jobs ] }
    (fun () ->
      let cancels = ref 0 and delays = ref 0 in
      for _ = 1 to 50 do
        match Chaos.point_job () with
        | `Cancel _ -> incr cancels
        | `Delay d ->
          Alcotest.(check bool) "delay bounded" true (d > 0.0 && d <= 0.02);
          incr delays
        | `None -> Alcotest.fail "p=1.0 must fire"
      done;
      Alcotest.(check bool) "both fault flavours occur" true (!cancels > 0 && !delays > 0))

(* Randomized bounded-time teardown property: whatever the (seeded) mix
   of job kinds and the teardown delay, every admitted job resolves to
   exactly one terminal outcome — the pool dying mid-flight included. *)
let qcheck_teardown_exactly_once =
  QCheck2.Test.make ~count:8 ~name:"service teardown resolves every job exactly once"
    QCheck2.Gen.(pair (int_range 4 16) (int_range 0 10))
    (fun (jobs, delay_ms) ->
      let config = { Service.default_config with Service.capacity = 32; runners = 3 } in
      let svc = Service.create ~config () in
      let tickets = List.init jobs (fun i -> submit_exn svc (mixed_request i)) in
      Thread.delay (float_of_int delay_ms /. 1000.);
      Runtime.shutdown ();
      let ok =
        List.for_all
          (fun t ->
            match Service.wait_timeout t wait_bound_s with
            | Some _ -> Service.For_testing.completions t = 1
            | None -> false)
          tickets
      in
      Service.shutdown svc;
      ok)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "service"
    [
      ( "backoff",
        [
          Alcotest.test_case "deterministic per seed+attempt" `Quick test_backoff_deterministic;
          Alcotest.test_case "bounds and growth" `Quick test_backoff_bounds;
          Alcotest.test_case "seeds decorrelate" `Quick test_backoff_decorrelated;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "opens on failure rate" `Quick test_breaker_opens_on_failure_rate;
          Alcotest.test_case "half-open single probe" `Quick test_breaker_half_open_probe;
          Alcotest.test_case "reopens on probe failure" `Quick
            test_breaker_reopens_on_probe_failure;
          Alcotest.test_case "mixed rate stays closed" `Quick
            test_breaker_mixed_rate_stays_closed;
        ] );
      ( "fair queue",
        [
          Alcotest.test_case "round-robin across tenants" `Quick test_fair_queue_round_robin;
          Alcotest.test_case "close semantics" `Quick test_fair_queue_close;
          Alcotest.test_case "blocking take" `Quick test_fair_queue_blocking_take;
          Alcotest.test_case "drain" `Quick test_fair_queue_drain;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "request round trip" `Quick test_protocol_round_trip;
          Alcotest.test_case "reserved keys" `Quick test_protocol_reserved_keys;
          Alcotest.test_case "parse errors" `Quick test_protocol_errors;
          Alcotest.test_case "response round trip" `Quick test_protocol_responses;
        ] );
      ( "service",
        [
          Alcotest.test_case "submit completes" `Quick test_submit_completes;
          Alcotest.test_case "bad request" `Quick test_bad_request;
          Alcotest.test_case "terminal failure" `Quick test_terminal_failure;
          Alcotest.test_case "typed Overloaded at capacity" `Quick
            test_overloaded_typed_rejection;
          Alcotest.test_case "deadline on running job" `Quick test_deadline_running_job;
          Alcotest.test_case "deadline on queued job" `Quick test_deadline_queued_job;
          Alcotest.test_case "cancel running job" `Quick test_cancel_running_job;
          Alcotest.test_case "cancel queued job" `Quick test_cancel_queued_job;
          Alcotest.test_case "retry then success" `Quick test_retry_transient_then_success;
          Alcotest.test_case "retry budget exhausted" `Quick test_retry_budget_exhausted;
          Alcotest.test_case "breaker sheds retries" `Quick test_breaker_sheds_retries;
          Alcotest.test_case "on_complete exactly once" `Quick test_on_complete_exactly_once;
          Alcotest.test_case "shutdown drains" `Quick test_shutdown_drains;
          Alcotest.test_case "shutdown without drain cancels" `Quick
            test_shutdown_no_drain_cancels;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "pool teardown with in-flight jobs" `Quick
            test_pool_teardown_with_inflight_jobs;
          Alcotest.test_case "worker crash fails fast and heals" `Quick
            test_worker_crash_fails_fast_and_heals;
        ] );
      ( "chaos jobs kind",
        [
          Alcotest.test_case "exactly-once under jobs chaos" `Quick
            test_chaos_jobs_exactly_once;
          Alcotest.test_case "trace round trip (connected flows)" `Quick
            test_chaos_trace_round_trip;
          Alcotest.test_case "point_job needs the jobs kind" `Quick
            test_chaos_point_job_off_by_default;
          Alcotest.test_case "point_job fires at p=1" `Quick test_chaos_point_job_fires;
        ] );
      ( "teardown property",
        [ QCheck_alcotest.to_alcotest ~long:false qcheck_teardown_exactly_once ] );
    ]
