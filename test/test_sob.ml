(* Stream-of-blocks library (§2.1 / Figure 16 comparison). *)

module Sob = Bds_sob.Sob
open Bds_test_util

let () = init ()

let block_sizes = [ 1; 3; 17; 100; 1000 ]

let test_tabulate_to_array () =
  List.iter
    (fun bs ->
      let s = Sob.tabulate ~block_size:bs 100 (fun i -> i * 2) in
      Alcotest.(check int_array)
        (Printf.sprintf "roundtrip bs=%d" bs)
        (Array.init 100 (fun i -> i * 2))
        (Sob.to_array s);
      Alcotest.(check (option int)) "length" (Some 100) (Sob.length s))
    block_sizes;
  Alcotest.(check int_array) "empty" [||]
    (Sob.to_array (Sob.tabulate ~block_size:4 0 (fun _ -> assert false)))

let test_map_mapi () =
  List.iter
    (fun bs ->
      let s = Sob.of_array ~block_size:bs (Array.init 50 Fun.id) in
      Alcotest.(check int_array) "map"
        (Array.init 50 (fun i -> i + 1))
        (Sob.to_array (Sob.map (( + ) 1) s));
      Alcotest.(check int_array) "mapi"
        (Array.init 50 (fun i -> 2 * i))
        (Sob.to_array (Sob.mapi ( + ) s)))
    block_sizes

let test_scan () =
  List.iter
    (fun bs ->
      let a = Array.init 113 (fun i -> (i mod 9) - 4) in
      let got = Sob.to_array (Sob.scan ( + ) 0 (Sob.of_array ~block_size:bs a)) in
      let expect, _ = list_scan ( + ) 0 (Array.to_list a) in
      Alcotest.(check int_list)
        (Printf.sprintf "scan bs=%d" bs)
        expect (Array.to_list got))
    block_sizes;
  (* Non-commutative: carry must thread across blocks in order. *)
  let strs = Array.init 20 (fun i -> String.make 1 (Char.chr (97 + i))) in
  let got = Sob.to_array (Sob.scan ( ^ ) "" (Sob.of_array ~block_size:3 strs)) in
  let expect, _ = list_scan ( ^ ) "" (Array.to_list strs) in
  Alcotest.(check (list string)) "string scan" expect (Array.to_list got)

let test_reduce () =
  List.iter
    (fun bs ->
      let a = Array.init 1000 Fun.id in
      Alcotest.(check int)
        (Printf.sprintf "reduce bs=%d" bs)
        499500
        (Sob.reduce ( + ) 0 (Sob.of_array ~block_size:bs a)))
    block_sizes;
  let strs = Array.init 26 (fun i -> String.make 1 (Char.chr (97 + i))) in
  Alcotest.(check string) "ordered reduce" "abcdefghijklmnopqrstuvwxyz"
    (Sob.reduce ( ^ ) "" (Sob.of_array ~block_size:4 strs))

let test_filter () =
  List.iter
    (fun bs ->
      let a = Array.init 200 Fun.id in
      let s = Sob.of_array ~block_size:bs a in
      let f = Sob.filter (fun x -> x mod 3 = 0) s in
      Alcotest.(check (option int)) "length unknown" None (Sob.length f);
      Alcotest.(check int_list)
        (Printf.sprintf "filter bs=%d" bs)
        (List.filter (fun x -> x mod 3 = 0) (Array.to_list a))
        (Array.to_list (Sob.to_array f));
      (* filter then reduce, with the carry threading across
         variable-length blocks. *)
      Alcotest.(check int) "filter+reduce"
        (List.fold_left ( + ) 0 (List.filter (fun x -> x mod 3 = 0) (Array.to_list a)))
        (Sob.reduce ( + ) 0 f))
    block_sizes;
  Alcotest.(check int_list) "filter none" []
    (Array.to_list
       (Sob.to_array (Sob.filter (fun _ -> false) (Sob.of_array ~block_size:7 (Array.init 50 Fun.id)))))

let test_pipeline () =
  (* The bestcut shape over sob: map, scan, map, reduce. *)
  let a = Array.init 500 (fun i -> i mod 7) in
  let s = Sob.of_array ~block_size:64 a in
  let got =
    Sob.reduce min max_int (Sob.mapi (fun i c -> c - i) (Sob.scan ( + ) 0 (Sob.map (( * ) 2) s)))
  in
  let prefixes, _ = list_scan ( + ) 0 (List.map (( * ) 2) (Array.to_list a)) in
  let expect = List.fold_left min max_int (List.mapi (fun i c -> c - i) prefixes) in
  Alcotest.(check int) "sob pipeline" expect got

let () =
  Alcotest.run "sob"
    [
      ( "sob",
        [
          Alcotest.test_case "tabulate/to_array" `Quick test_tabulate_to_array;
          Alcotest.test_case "map/mapi" `Quick test_map_mapi;
          Alcotest.test_case "scan" `Quick test_scan;
          Alcotest.test_case "filter" `Quick test_filter;
          Alcotest.test_case "reduce" `Quick test_reduce;
          Alcotest.test_case "pipeline" `Quick test_pipeline;
        ] );
    ]
