(* Parallel stable merge sort: correctness, stability, and the extension
   kernels built on it (inverted index, raycast). *)

module Psort = Bds_sort.Psort
module K = Bds_kernels
open Bds_test_util

let () = init ()

let test_basic () =
  List.iter
    (fun n ->
      let a = Array.init n (fun i -> (i * 7919) mod 1000) in
      let expect = Array.copy a in
      Array.stable_sort compare expect;
      Alcotest.(check int_array) (Printf.sprintf "n=%d" n) expect (Psort.sort compare a);
      (* Input untouched. *)
      if n > 0 then
        Alcotest.(check int) "input intact" ((n - 1) * 7919 mod 1000) a.(n - 1))
    [ 0; 1; 2; 3; 100; 4096; 4097; 100_000 ]

let test_in_place_and_grain () =
  let a = Array.init 50_000 (fun i -> (i * 31) mod 977) in
  List.iter
    (fun grain ->
      let c = Array.copy a in
      Psort.sort_in_place ~grain compare c;
      Alcotest.(check bool) (Printf.sprintf "sorted grain=%d" grain) true
        (Psort.is_sorted compare c))
    [ 16; 100; 5000; 100_000 ]

let test_stability () =
  (* Pairs (key, original index): stable sort keeps index order per key. *)
  let n = 30_000 in
  let a = Array.init n (fun i -> ((i * 13) mod 7, i)) in
  let cmp (k1, _) (k2, _) = compare k1 k2 in
  let sorted = Psort.sort ~grain:64 cmp a in
  let ok = ref true in
  for i = 1 to n - 1 do
    let k1, x1 = sorted.(i - 1) and k2, x2 = sorted.(i) in
    if k1 = k2 && x1 >= x2 then ok := false;
    if k1 > k2 then ok := false
  done;
  Alcotest.(check bool) "stable" true !ok

let test_already_sorted_and_reverse () =
  let a = Array.init 10_000 Fun.id in
  Alcotest.(check int_array) "sorted input" a (Psort.sort ~grain:32 compare a);
  let r = Array.init 10_000 (fun i -> 9_999 - i) in
  Alcotest.(check int_array) "reverse input" a (Psort.sort ~grain:32 compare r);
  let c = Array.make 10_000 5 in
  Alcotest.(check int_array) "constant input" c (Psort.sort ~grain:32 compare c)

let test_merge () =
  let a = Array.init 1000 (fun i -> 2 * i) in
  let b = Array.init 500 (fun i -> (3 * i) + 1) in
  let expect = Array.concat [ a; b ] in
  Array.stable_sort compare expect;
  Alcotest.(check int_array) "merge" expect (Psort.merge compare a b);
  Alcotest.(check int_array) "merge empty left" a (Psort.merge compare [||] a);
  Alcotest.(check int_array) "merge empty right" a (Psort.merge compare a [||])

let test_custom_order () =
  let a = Bds_data.Gen.ints ~bound:1000 20_000 in
  let down = Psort.sort ~grain:100 (fun x y -> compare y x) a in
  Alcotest.(check bool) "descending" true
    (Psort.is_sorted (fun x y -> compare y x) down)

let test_group_by () =
  let pairs = [| ("b", 1); ("a", 2); ("b", 3); ("c", 4); ("a", 5); ("b", 6) |] in
  let got = Psort.group_by compare pairs in
  Alcotest.(check int) "groups" 3 (Array.length got);
  let find k = snd (Array.to_list got |> List.find (fun (k', _) -> k' = k)) in
  Alcotest.(check int_array) "a (input order)" [| 2; 5 |] (find "a");
  Alcotest.(check int_array) "b (input order)" [| 1; 3; 6 |] (find "b");
  Alcotest.(check int_array) "c" [| 4 |] (find "c");
  Alcotest.(check bool) "keys ascending" true
    (Array.to_list got |> List.map fst = [ "a"; "b"; "c" ]);
  Alcotest.(check int) "empty" 0 (Array.length (Psort.group_by compare ([||] : (int * int) array)));
  (* Large randomised check against a hashtable model. *)
  let n = 20_000 in
  let big = Array.init n (fun i -> ((i * 7) mod 97, i)) in
  let groups = Psort.group_by compare big in
  let total = Array.fold_left (fun acc (_, vs) -> acc + Array.length vs) 0 groups in
  Alcotest.(check int) "total preserved" n total;
  Array.iter
    (fun (k, vs) ->
      Array.iter (fun v -> if (v * 7) mod 97 <> k then Alcotest.fail "wrong group") vs;
      (* stability: ascending input indices *)
      ignore
        (Array.fold_left
           (fun prev v ->
             if v <= prev then Alcotest.fail "not stable";
             v)
           (-1) vs))
    groups

(* ---------------- unboxed float sort ---------------- *)

let float_sort_ref a =
  let c = Array.copy a in
  Array.stable_sort Float.compare c;
  c

let check_float_array name expect got =
  Alcotest.(check int) (name ^ " length") (Array.length expect) (Array.length got);
  Array.iteri
    (fun i x ->
      if not (Float.equal x got.(i)) then
        Alcotest.failf "%s: index %d differs (%h vs %h)" name i got.(i) x)
    expect

let test_sort_floats_basic () =
  List.iter
    (fun n ->
      let a = Array.init n (fun i -> float_of_int ((i * 7919) mod 1001) /. 8.0) in
      check_float_array (Printf.sprintf "n=%d" n) (float_sort_ref a)
        (Psort.sort_floats a);
      (* Input untouched; in-place variant sorts for real. *)
      if n > 0 then
        Alcotest.(check (float 0.0)) "input intact"
          (float_of_int ((n - 1) * 7919 mod 1001) /. 8.0)
          a.(n - 1);
      let c = Array.copy a in
      Psort.sort_floats_in_place c;
      check_float_array (Printf.sprintf "in place n=%d" n) (float_sort_ref a) c)
    [ 0; 1; 2; 3; 5; 100; 4096; 4097; 100_000 ];
  (* Negative zero and duplicates: Float.compare orders -0. before 0.,
     the primitive <= in the merge does not distinguish them — both are
     valid sorted orders under <=, so compare magnitudes only. *)
  let z = Psort.sort_floats [| 0.0; -0.0; 1.0; -0.0; 0.0 |] in
  Alcotest.(check bool) "zeros sorted" true
    (Psort.is_sorted Float.compare (Array.map Float.abs z));
  (* Infinities order with everything. *)
  let inf = [| infinity; neg_infinity; 0.0; 1e308; -1e308 |] in
  check_float_array "infinities" (float_sort_ref inf) (Psort.sort_floats inf)

let test_sort_floats_grain_and_tiles () =
  let a = Bds_data.Gen.floats ~seed:42 ~lo:(-500.0) ~hi:500.0 60_000 in
  let expect = float_sort_ref a in
  (* Sweep the sequential cutoff AND the merge tile so tile boundaries
     land everywhere relative to run boundaries: tile=1 makes every
     output element its own merge-path search; a huge tile degenerates
     to one sequential merge. *)
  let old_tile = Bds_runtime.Grain.merge_tile () in
  Fun.protect
    ~finally:(fun () -> Bds_runtime.Grain.set_merge_tile old_tile)
    (fun () ->
      List.iter
        (fun (grain, tile) ->
          Bds_runtime.Grain.set_merge_tile tile;
          check_float_array
            (Printf.sprintf "grain=%d tile=%d" grain tile)
            expect
            (Psort.sort_floats ~grain a))
        [ (16, 1); (16, 7); (100, 64); (1000, 4096); (100_000, 1_000_000); (64, 1023) ]);
  Alcotest.check_raises "tile >= 1"
    (Invalid_argument "Grain.set_merge_tile: tile must be >= 1") (fun () ->
      Bds_runtime.Grain.set_merge_tile 0)

let test_merge_floats () =
  let a = Array.init 1000 (fun i -> float_of_int (2 * i)) in
  let b = Array.init 500 (fun i -> float_of_int ((3 * i) + 1)) in
  let expect = float_sort_ref (Array.append a b) in
  check_float_array "merge" expect (Psort.merge_floats a b);
  check_float_array "merge empty left" a (Psort.merge_floats [||] a);
  check_float_array "merge empty right" a (Psort.merge_floats a [||]);
  (* All-equal inputs stress the tie-handling in the merge path. *)
  let e = Array.make 5000 3.5 in
  check_float_array "all equal" (Array.make 10_000 3.5)
    (Psort.merge_floats e e)

let float_qcheck_tests =
  let open QCheck2 in
  let float_array = Gen.(array_size (int_bound 300) (float_range (-100.0) 100.0)) in
  [
    Test.make ~name:"sort_floats = stable_sort Float.compare" ~count:300
      Gen.(pair float_array (int_range 1 200))
      (fun (a, grain) ->
        (* Float.compare distinguishes -0./0. where <= does not; keep
           the generator away from signed zeros (float_range above never
           produces -0.) so array equality is the right check. *)
        Psort.sort_floats ~grain a = float_sort_ref a);
    Test.make ~name:"merge_floats of sorted = sorted concat" ~count:300
      Gen.(pair float_array float_array)
      (fun (a, b) ->
        let a = float_sort_ref a and b = float_sort_ref b in
        Psort.merge_floats a b = float_sort_ref (Array.append a b));
  ]

let qcheck_tests =
  let open QCheck2 in
  [
    Test.make ~name:"psort = stable_sort" ~count:300
      Gen.(pair small_int_array (int_range 1 200))
      (fun (a, grain) ->
        let expect = Array.copy a in
        Array.stable_sort compare expect;
        Psort.sort ~grain compare a = expect);
    Test.make ~name:"merge of sorted = sorted concat" ~count:300
      Gen.(pair small_int_array small_int_array)
      (fun (a, b) ->
        let a = Array.copy a and b = Array.copy b in
        Array.stable_sort compare a;
        Array.stable_sort compare b;
        let expect = Array.concat [ a; b ] in
        Array.stable_sort compare expect;
        Psort.merge compare a b = expect);
  ]

(* ---------------- extension kernels ---------------- *)

let test_inverted_index () =
  List.iter
    (fun n ->
      let text = K.Inverted_index.generate ~seed:(n + 1) n in
      let expect = K.Inverted_index.reference text in
      Alcotest.(check (pair int int)) "array" expect
        (K.Inverted_index.Array_version.index text);
      Alcotest.(check (pair int int)) "rad" expect
        (K.Inverted_index.Rad_version.index text);
      Alcotest.(check (pair int int)) "delay" expect
        (K.Inverted_index.Delay_version.index text))
    [ 0; 1; 100; 50_000 ];
  let text = Bytes.of_string "a b a\nb c\na a\n" in
  (* words: a b c; postings: (a,0)(b,0)(b,1)(c,1)(a,2) *)
  Alcotest.(check (pair int int)) "tiny" (3, 5)
    (K.Inverted_index.Delay_version.index text);
  Alcotest.(check (pair int int)) "tiny ref" (3, 5) (K.Inverted_index.reference text);
  (* Materialised posting lists. *)
  let idx = K.Inverted_index.postings text in
  Alcotest.(check (array (pair string int_array)))
    "postings"
    [| ("a", [| 0; 2 |]); ("b", [| 0; 1 |]); ("c", [| 1 |]) |]
    idx;
  (* Counts derived from postings agree with [index] on generated text. *)
  let big = K.Inverted_index.generate ~seed:5 30_000 in
  let idx = K.Inverted_index.postings big in
  let words = Array.length idx in
  let posts = Array.fold_left (fun acc (_, ds) -> acc + Array.length ds) 0 idx in
  Alcotest.(check (pair int int)) "postings consistent with index" (words, posts)
    (K.Inverted_index.Delay_version.index big)

let test_raycast () =
  let tris, rays = K.Raycast.generate ~triangles:200 ~rays:500 () in
  let expect = K.Raycast.reference tris rays in
  let check name f =
    let got = f tris rays in
    Alcotest.(check int) (name ^ " length") (Array.length expect) (Array.length got);
    Array.iteri
      (fun i d ->
        if Float.abs (d -. expect.(i)) > 1e-9 && not (d = infinity && expect.(i) = infinity)
        then Alcotest.failf "%s: ray %d differs (%f vs %f)" name i d expect.(i))
      got
  in
  check "array" K.Raycast.Array_version.cast;
  check "rad" K.Raycast.Rad_version.cast;
  check "delay" K.Raycast.Delay_version.cast;
  (* Some rays must actually hit something for the test to be meaningful. *)
  let hits, total = K.Raycast.Delay_version.cast_summary tris rays in
  Alcotest.(check bool) "some hits" true (hits > 0);
  Alcotest.(check bool) "finite total" true (Float.is_finite total);
  (* Known geometry: a ray straight at a big triangle. *)
  let t =
    K.Raycast.
      {
        v0 = { x = -1.0; y = -1.0; z = 2.0 };
        v1 = { x = 1.0; y = -1.0; z = 2.0 };
        v2 = { x = 0.0; y = 1.0; z = 2.0 };
      }
  in
  let r =
    K.Raycast.{ origin = { x = 0.0; y = 0.0; z = 0.0 }; dir = { x = 0.0; y = 0.0; z = 1.0 } }
  in
  let d = (K.Raycast.Delay_version.cast [| t |] [| r |]).(0) in
  Alcotest.(check (float 1e-9)) "axis hit at z=2" 2.0 d;
  let miss =
    K.Raycast.{ origin = { x = 5.0; y = 5.0; z = 0.0 }; dir = { x = 0.0; y = 0.0; z = 1.0 } }
  in
  Alcotest.(check bool) "miss" true
    ((K.Raycast.Delay_version.cast [| t |] [| miss |]).(0) = infinity)

let test_histogram () =
  List.iter
    (fun (n, buckets) ->
      let keys = K.Histogram.generate ~seed:(n + buckets) ~buckets n in
      let expect = K.Histogram.reference ~buckets keys in
      Alcotest.(check int_array) "array/atomics" expect
        (K.Histogram.Array_version.by_atomics ~buckets keys);
      Alcotest.(check int_array) "delay/atomics" expect
        (K.Histogram.Delay_version.by_atomics ~buckets keys);
      Alcotest.(check int_array) "array/sort" expect
        (K.Histogram.Array_version.by_sort ~buckets keys);
      Alcotest.(check int_array) "rad/sort" expect
        (K.Histogram.Rad_version.by_sort ~buckets keys);
      Alcotest.(check int_array) "delay/sort" expect
        (K.Histogram.Delay_version.by_sort ~buckets keys))
    [ (0, 4); (1, 1); (1000, 10); (50_000, 256) ];
  Alcotest.check_raises "out of range"
    (Invalid_argument "Histogram: key out of range") (fun () ->
      ignore (K.Histogram.Delay_version.by_sort ~buckets:2 [| 0; 5 |]))

let test_dedup () =
  List.iter
    (fun (n, distinct) ->
      let keys = K.Dedup.generate ~seed:(n + distinct) ~distinct n in
      let expect = K.Dedup.reference keys in
      Alcotest.(check int_array) "array" expect (K.Dedup.Array_version.dedup keys);
      Alcotest.(check int_array) "rad" expect (K.Dedup.Rad_version.dedup keys);
      Alcotest.(check int_array) "delay" expect (K.Dedup.Delay_version.dedup keys))
    [ (0, 1); (1, 1); (1000, 7); (50_000, 500); (1000, 100_000) ];
  Alcotest.(check int_array) "all same" [| 3 |]
    (K.Dedup.Delay_version.dedup (Array.make 100 3))

let () =
  Alcotest.run "sort"
    [
      ( "psort",
        [
          Alcotest.test_case "basic" `Quick test_basic;
          Alcotest.test_case "in place / grains" `Quick test_in_place_and_grain;
          Alcotest.test_case "stability" `Quick test_stability;
          Alcotest.test_case "sorted/reverse/constant" `Quick test_already_sorted_and_reverse;
          Alcotest.test_case "merge" `Quick test_merge;
          Alcotest.test_case "custom order" `Quick test_custom_order;
          Alcotest.test_case "group_by" `Quick test_group_by;
        ] );
      ( "sort_floats",
        [
          Alcotest.test_case "basic" `Quick test_sort_floats_basic;
          Alcotest.test_case "grain / merge tiles" `Quick
            test_sort_floats_grain_and_tiles;
          Alcotest.test_case "merge_floats" `Quick test_merge_floats;
        ] );
      ( "properties",
        List.map (QCheck_alcotest.to_alcotest ~long:false)
          (qcheck_tests @ float_qcheck_tests) );
      ( "extension kernels",
        [
          Alcotest.test_case "inverted index" `Quick test_inverted_index;
          Alcotest.test_case "raycast" `Quick test_raycast;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "dedup" `Quick test_dedup;
        ] );
    ]
