(* Sequential delayed streams: semantics vs list model, laziness. *)

module Stream = Bds_stream.Stream
module Buffer_ext = Bds_stream.Buffer_ext
module Cancel = Bds_runtime.Cancel
open Bds_test_util

let check_ilist = Alcotest.(check (list int))

let test_tabulate () =
  check_ilist "tabulate" [ 0; 2; 4; 6 ] (Stream.to_list (Stream.tabulate 4 (fun i -> 2 * i)));
  check_ilist "empty" [] (Stream.to_list (Stream.tabulate 0 (fun _ -> assert false)))

let test_map_zip () =
  let s = Stream.tabulate 5 Fun.id in
  check_ilist "map" [ 1; 2; 3; 4; 5 ] (Stream.to_list (Stream.map (( + ) 1) s));
  let t = Stream.tabulate 5 (fun i -> 10 * i) in
  check_ilist "zip_with" [ 0; 11; 22; 33; 44 ]
    (Stream.to_list (Stream.zip_with ( + ) s t));
  Alcotest.(check (list (pair int int)))
    "zip"
    [ (0, 0); (1, 10); (2, 20) ]
    (Stream.to_list (Stream.zip (Stream.tabulate 3 Fun.id) (Stream.tabulate 3 (fun i -> 10 * i))));
  Alcotest.check_raises "zip length mismatch"
    (Invalid_argument "Stream.zip: length mismatch") (fun () ->
      ignore (Stream.zip (Stream.tabulate 2 Fun.id) (Stream.tabulate 3 Fun.id)))

let test_mapi () =
  check_ilist "mapi" [ 0; 11; 22 ]
    (Stream.to_list (Stream.mapi (fun i v -> i + v) (Stream.tabulate 3 (fun i -> 10 * i))))

let test_scans () =
  let s = Stream.tabulate 5 (fun i -> i + 1) in
  check_ilist "exclusive scan" [ 0; 1; 3; 6; 10 ]
    (Stream.to_list (Stream.scan ( + ) 0 s));
  check_ilist "inclusive scan" [ 1; 3; 6; 10; 15 ]
    (Stream.to_list (Stream.scan_incl ( + ) 0 s));
  (* Non-identity seed: applied exactly once. *)
  check_ilist "seeded scan" [ 100; 101; 103 ]
    (Stream.to_list (Stream.scan ( + ) 100 (Stream.tabulate 3 (fun i -> i + 1))))

let test_reduce () =
  let s = Stream.tabulate 100 Fun.id in
  Alcotest.(check int) "reduce" 4950 (Stream.reduce ( + ) 0 s);
  Alcotest.(check int) "reduce1" 4950 (Stream.reduce1 ( + ) (Stream.tabulate 100 Fun.id));
  Alcotest.(check string) "reduce order" "abc"
    (Stream.reduce ( ^ ) "" (Stream.of_array [| "a"; "b"; "c" |]));
  Alcotest.check_raises "reduce1 empty"
    (Invalid_argument "Stream.reduce1: empty stream") (fun () ->
      ignore (Stream.reduce1 ( + ) (Stream.tabulate 0 (fun _ -> 0))))

let test_pack () =
  let s = Stream.tabulate 10 Fun.id in
  Alcotest.(check int_array) "pack evens" [| 0; 2; 4; 6; 8 |]
    (Stream.pack_to_array (fun x -> x mod 2 = 0) s);
  Alcotest.(check int_array) "pack none" [||]
    (Stream.pack_to_array (fun _ -> false) (Stream.tabulate 10 Fun.id));
  Alcotest.(check int_array) "pack_op" [| 0; 4; 16; 36; 64 |]
    (Stream.pack_op_to_array
       (fun x -> if x mod 2 = 0 then Some (x * x) else None)
       (Stream.tabulate 10 Fun.id))

let test_take () =
  let s () = Stream.tabulate 10 Fun.id in
  check_ilist "take 3" [ 0; 1; 2 ] (Stream.to_list (Stream.take 3 (s ())));
  check_ilist "take over-length" (List.init 10 Fun.id)
    (Stream.to_list (Stream.take 99 (s ())));
  check_ilist "take 0" [] (Stream.to_list (Stream.take 0 (s ())));
  Alcotest.check_raises "take negative" (Invalid_argument "Stream.take")
    (fun () -> ignore (Stream.take (-1) (s ())));
  (* take composes with scan: only the taken prefix is evaluated. *)
  let calls = ref 0 in
  let counted =
    Stream.map
      (fun x ->
        incr calls;
        x)
      (Stream.tabulate 100 Fun.id)
  in
  check_ilist "take of scan" [ 0; 0; 1 ]
    (Stream.to_list (Stream.take 3 (Stream.scan ( + ) 0 counted)));
  Alcotest.(check int) "only prefix evaluated" 3 !calls

let test_to_list_order () =
  (* to_list must pull the trickle function strictly left-to-right:
     streams are stateful, so any other evaluation order (e.g. handing
     the effectful [next] to [List.init], whose order is unspecified)
     permutes — and for scans corrupts — the result.  A scan stream
     makes order violations visible in the values, and a side-channel
     log pins the pull order itself.  The length is large enough that a
     right-to-left [List.init] implementation would also hit its
     non-tail-recursive fallback threshold. *)
  let n = 20_000 in
  let order = ref [] in
  let logged =
    Stream.map
      (fun x ->
        order := x :: !order;
        x)
      (Stream.tabulate n Fun.id)
  in
  let got = Stream.to_list (Stream.scan_incl ( + ) 0 logged) in
  let expect = list_scan_incl ( + ) 0 (List.init n Fun.id) in
  Alcotest.(check bool) "inclusive prefix sums, in order" true (got = expect);
  Alcotest.(check bool) "elements pulled left-to-right" true
    (List.rev !order = List.init n Fun.id)

let test_of_array_slice () =
  let a = [| 10; 11; 12; 13; 14 |] in
  check_ilist "slice" [ 11; 12; 13 ] (Stream.to_list (Stream.of_array_slice a 1 3));
  Alcotest.check_raises "bad slice" (Invalid_argument "Stream.of_array_slice")
    (fun () -> ignore (Stream.of_array_slice a 3 4))

let test_laziness () =
  (* Constructors must not evaluate any element. *)
  let calls = ref 0 in
  let s =
    Stream.tabulate 1000 (fun i ->
        incr calls;
        i)
  in
  let s = Stream.map (( * ) 2) s in
  let s = Stream.scan ( + ) 0 s in
  Alcotest.(check int) "no eager calls" 0 !calls;
  ignore (Stream.reduce ( + ) 0 s);
  Alcotest.(check int) "one pass" 1000 !calls

let test_iter_iteri () =
  let acc = ref [] in
  Stream.iter (fun v -> acc := v :: !acc) (Stream.tabulate 4 Fun.id);
  check_ilist "iter order" [ 3; 2; 1; 0 ] !acc;
  let acc2 = ref [] in
  Stream.iteri (fun i v -> acc2 := (i + v) :: !acc2) (Stream.tabulate 3 (fun i -> 10 * i));
  check_ilist "iteri" [ 22; 11; 0 ] !acc2

let test_equal () =
  let mk () = Stream.tabulate 5 Fun.id in
  Alcotest.(check bool) "equal" true (Stream.equal ( = ) (mk ()) (mk ()));
  Alcotest.(check bool) "not equal" false
    (Stream.equal ( = ) (mk ()) (Stream.tabulate 5 (fun i -> i + 1)));
  Alcotest.(check bool) "length differs" false
    (Stream.equal ( = ) (mk ()) (Stream.tabulate 4 Fun.id))

let test_fold_stop () =
  let s () = Stream.tabulate 100 Fun.id in
  Alcotest.(check int) "stop 10" 45 (Stream.fold (s ()) ~stop:10 ( + ) 0);
  Alcotest.(check int) "stop 0" 0 (Stream.fold (s ()) ~stop:0 ( + ) 0);
  Alcotest.(check int) "stop = length" 4950 (Stream.fold (s ()) ~stop:100 ( + ) 0);
  (* stop truncates the whole pipeline: upstream elements past it are
     never produced, even through scan state. *)
  let calls = ref 0 in
  let piped =
    Stream.scan_incl ( + ) 0
      (Stream.map
         (fun x ->
           incr calls;
           x)
         (Stream.tabulate 1000 Fun.id))
  in
  let got = Stream.fold piped ~stop:5 (fun acc v -> v :: acc) [] in
  check_ilist "prefix of scan" [ 10; 6; 3; 1; 0 ] got;
  Alcotest.(check int) "only prefix pushed" 5 !calls;
  let sl = Stream.of_array_slice [| 9; 1; 2; 3; 4 |] 1 4 in
  Alcotest.(check int) "slice stop 2" 3 (Stream.fold sl ~stop:2 ( + ) 0)

let mk_trickle n =
  Stream.make ~length:n ~start:(fun () ->
      let i = ref (-1) in
      fun () ->
        incr i;
        !i)

let test_is_fused () =
  let base = Stream.tabulate 8 Fun.id in
  Alcotest.(check bool) "tabulate" true (Stream.is_fused base);
  Alcotest.(check bool) "of_array_slice" true
    (Stream.is_fused (Stream.of_array_slice [| 1; 2; 3 |] 0 3));
  Alcotest.(check bool) "combinators keep fused" true
    (Stream.is_fused (Stream.take 3 (Stream.scan ( + ) 0 (Stream.map succ base))));
  let trickle = mk_trickle 8 in
  Alcotest.(check bool) "make is a trickle fallback" false (Stream.is_fused trickle);
  Alcotest.(check bool) "map keeps trickle" false
    (Stream.is_fused (Stream.map succ (mk_trickle 8)));
  (* zip_with reports the driving (left) side. *)
  Alcotest.(check bool) "zip: fused left drives" true
    (Stream.is_fused (Stream.zip_with ( + ) base (mk_trickle 8)));
  Alcotest.(check bool) "zip: trickle left drives" false
    (Stream.is_fused (Stream.zip_with ( + ) (mk_trickle 8) base));
  (* The trickle-derived fold still computes the right answer. *)
  Alcotest.(check int) "trickle fold result" 28
    (Stream.reduce ( + ) 0 (mk_trickle 8));
  check_ilist "trickle zip result" [ 0; 2; 4 ]
    (Stream.to_list (Stream.zip_with ( + ) (mk_trickle 3) (Stream.tabulate 3 Fun.id)))

(* A push fold polls the ambient cancellation token once per 64-element
   chunk: a token cancelled mid-stream (here by the map body itself at
   element 1000) stops the fold at the next chunk boundary instead of
   running the remaining 99k elements.  Exercised for both the native
   push loop and the trickle-derived fallback. *)
let poll_cadence_of drive =
  let tok = Cancel.create () in
  let touched = ref 0 in
  Alcotest.check_raises "fold trips mid-stream" Cancel.Cancelled (fun () ->
      Cancel.with_ambient tok (fun () ->
          drive (fun (x : int) ->
              incr touched;
              if x = 1000 then Cancel.cancel tok;
              x)));
  Alcotest.(check bool) "saw the poisoning element" true (!touched >= 1001);
  Alcotest.(check bool)
    (Printf.sprintf "stopped within one poll chunk (touched %d)" !touched)
    true
    (!touched <= 1001 + 64)

let test_fold_poll_cadence () =
  poll_cadence_of (fun poison ->
      ignore
        (Stream.reduce ( + ) 0 (Stream.map poison (Stream.tabulate 100_000 Fun.id))));
  poll_cadence_of (fun poison ->
      ignore (Stream.reduce ( + ) 0 (Stream.map poison (mk_trickle 100_000))))

(* Nested-push segment concatenation: model = the flattened suffix of
   the segment table starting at (start_seg, start_ofs). *)
let test_of_segments () =
  let segs = [| [| 0; 1; 2 |]; [||]; [| 3 |]; [| 4; 5; 6; 7 |]; [| 8 |] |] in
  let seg_len s = Array.length segs.(s) in
  let elem s i = segs.(s).(i) in
  let mk ~length ~start_seg ~start_ofs =
    Stream.of_segments ~length ~seg_len ~elem ~start_seg ~start_ofs
  in
  let s = mk ~length:9 ~start_seg:0 ~start_ofs:0 in
  Alcotest.(check bool) "fused" true (Stream.is_fused s);
  check_ilist "full" [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ] (Stream.to_list s);
  (* Mid-segment start, both execution paths. *)
  let mid = mk ~length:4 ~start_seg:3 ~start_ofs:1 in
  check_ilist "mid-segment push" [ 5; 6; 7; 8 ]
    (List.rev (Stream.fold mid ~stop:4 (fun acc v -> v :: acc) []));
  let next = Stream.start (mk ~length:4 ~start_seg:3 ~start_ofs:1) in
  check_ilist "mid-segment trickle" [ 5; 6; 7; 8 ]
    (List.init 4 (fun _ -> next ()));
  (* stop truncates inside a segment; empty segments are skipped. *)
  Alcotest.(check int) "stop mid-segment" 10
    (Stream.fold (mk ~length:9 ~start_seg:0 ~start_ofs:0) ~stop:5 ( + ) 0);
  check_ilist "across empty segment" [ 2; 3; 4 ]
    (Stream.to_list (mk ~length:3 ~start_seg:0 ~start_ofs:2))

(* Skip-push filtered region over option-stream blocks. *)
let test_selected_region () =
  (* blocks j holds the multiples of 3 in [10j, 10j+10). *)
  let blocks j =
    Stream.mapi
      (fun k _ ->
        let v = (10 * j) + k in
        if v mod 3 = 0 then Some v else None)
      (Stream.tabulate 10 Fun.id)
  in
  let mk ~length ~start_block ~skip =
    Stream.selected_region ~length ~blocks ~start_block ~skip
  in
  let s = mk ~length:7 ~start_block:0 ~skip:0 in
  Alcotest.(check bool) "fused mirrors input" true (Stream.is_fused s);
  check_ilist "from origin" [ 0; 3; 6; 9; 12; 15; 18 ] (Stream.to_list s);
  (* skip drops survivors, so a region can start mid-block. *)
  check_ilist "with skip" [ 6; 9; 12 ]
    (Stream.to_list (mk ~length:3 ~start_block:0 ~skip:2));
  check_ilist "later block + skip" [ 24; 27; 30 ]
    (Stream.to_list (mk ~length:3 ~start_block:2 ~skip:1));
  (* Trickle path agrees. *)
  let next = Stream.start (mk ~length:3 ~start_block:2 ~skip:1) in
  check_ilist "trickle agrees" [ 24; 27; 30 ] (List.init 3 (fun _ -> next ()));
  (* fold ~stop truncates the region itself. *)
  Alcotest.(check int) "fold stop" 3
    (Stream.fold (mk ~length:7 ~start_block:0 ~skip:0) ~stop:2 ( + ) 0);
  (* Regression: regions nest (filter-of-filter).  The outer region's
     early-stop exception must not be swallowed by the inner region's
     fold — a shared exception constructor made the outer loop
     undercount and walk past its last input block. *)
  let inner_blocks = blocks in
  let outer_blocks j =
    (* One outer block per inner region block: survivors v with v mod 2 = 0. *)
    Stream.map
      (fun v -> if v mod 2 = 0 then Some v else None)
      (Stream.selected_region ~length:3 ~blocks:inner_blocks ~start_block:j
         ~skip:0)
  in
  let nested =
    Stream.selected_region ~length:4 ~blocks:outer_blocks ~start_block:0 ~skip:0
  in
  check_ilist "nested regions" [ 0; 6; 12; 18 ] (Stream.to_list nested);
  Alcotest.(check int) "nested fold stop" 6
    (Stream.fold
       (Stream.selected_region ~length:4 ~blocks:outer_blocks ~start_block:0
          ~skip:0)
       ~stop:2 ( + ) 0)

(* The nested-push loops keep the 64-element cancellation cadence. *)
let test_region_poll_cadence () =
  poll_cadence_of (fun poison ->
      let seg_len _ = 1_000 in
      let elem s i = poison ((1_000 * s) + i) in
      ignore
        (Stream.reduce ( + ) 0
           (Stream.of_segments ~length:100_000 ~seg_len ~elem ~start_seg:0
              ~start_ofs:0)));
  poll_cadence_of (fun poison ->
      let blocks j =
        Stream.map
          (fun k -> Some (poison ((1_000 * j) + k)))
          (Stream.tabulate 1_000 Fun.id)
      in
      ignore
        (Stream.reduce ( + ) 0
           (Stream.selected_region ~length:100_000 ~blocks ~start_block:0
              ~skip:0)))

let test_buffer () =
  let b = Buffer_ext.create () in
  Alcotest.(check int) "empty len" 0 (Buffer_ext.length b);
  for i = 0 to 99 do
    Buffer_ext.push b i
  done;
  Alcotest.(check int) "len" 100 (Buffer_ext.length b);
  Alcotest.(check int) "get" 57 (Buffer_ext.get b 57);
  Alcotest.(check int_array) "to_array" (Array.init 100 Fun.id) (Buffer_ext.to_array b);
  Alcotest.check_raises "get out of range" (Invalid_argument "Buffer_ext.get")
    (fun () -> ignore (Buffer_ext.get b 100));
  Buffer_ext.clear b;
  Alcotest.(check int) "cleared" 0 (Buffer_ext.length b)

(* QCheck: stream pipeline equals list pipeline. *)
let qcheck_tests =
  let open QCheck2 in
  [
    Test.make ~name:"scan matches list model" ~count:200 small_int_array (fun a ->
        let got = Stream.to_list (Stream.scan ( + ) 0 (Stream.of_array a)) in
        let expect, _ = list_scan ( + ) 0 (Array.to_list a) in
        got = expect);
    Test.make ~name:"scan_incl matches list model" ~count:200 small_int_array
      (fun a ->
        let got = Stream.to_list (Stream.scan_incl ( + ) 0 (Stream.of_array a)) in
        got = list_scan_incl ( + ) 0 (Array.to_list a));
    Test.make ~name:"map-pack pipeline" ~count:200 small_int_array (fun a ->
        let got =
          Stream.pack_to_array
            (fun x -> x > 0)
            (Stream.map (fun x -> x - 1) (Stream.of_array a))
        in
        got
        = (Array.to_list a
          |> List.map (fun x -> x - 1)
          |> List.filter (fun x -> x > 0)
          |> Array.of_list));
  ]

(* QCheck: push/pull equivalence.  Arbitrary combinator chains over both
   source kinds must produce the same elements through the fused push
   fold (what every linear consumer drives) as through the resumable
   trickle function (the reference semantics [start] still exposes). *)
type chain_op = OMap of int | OMapi | OZip | OScan of int | OScanIncl of int | OTake of int

let apply_op s = function
  | OMap k -> Stream.map (fun x -> (2 * x) + k) s
  | OMapi -> Stream.mapi (fun i v -> i + v) s
  | OZip ->
    Stream.zip_with ( + ) s (Stream.tabulate (Stream.length s) (fun i -> 3 * i))
  | OScan k -> Stream.scan ( + ) k s
  | OScanIncl k -> Stream.scan_incl ( + ) k s
  | OTake k -> Stream.take (k mod (Stream.length s + 1)) s

(* Streams are single-use once driven, so the property builds a fresh
   chain per consumer. *)
let mk_chain (a, use_slice, ops) () =
  let base =
    if use_slice && Array.length a >= 2 then
      Stream.of_array_slice a 1 (Array.length a - 2)
    else Stream.of_array a
  in
  List.fold_left apply_op base ops

let trickle_to_list s =
  let next = Stream.start s in
  let n = Stream.length s in
  let rec go i acc = if i = n then List.rev acc else go (i + 1) (next () :: acc) in
  go 0 []

let push_pull_tests =
  let open QCheck2 in
  let gen_op =
    Gen.(
      oneof
        [
          map (fun k -> OMap k) (int_range (-3) 3);
          return OMapi;
          return OZip;
          map (fun k -> OScan k) (int_range (-3) 3);
          map (fun k -> OScanIncl k) (int_range (-3) 3);
          map (fun k -> OTake k) (int_range 0 30);
        ])
  in
  let gen_chain =
    Gen.(
      map3
        (fun a b ops -> (a, b, ops))
        small_int_array bool
        (list_size (int_range 0 5) gen_op))
  in
  [
    Test.make ~name:"push consumers = trickle reference" ~count:500 gen_chain
      (fun c ->
        let mk = mk_chain c in
        let reference = trickle_to_list (mk ()) in
        Stream.to_list (mk ()) = reference
        && Stream.reduce ( + ) 0 (mk ()) = List.fold_left ( + ) 0 reference
        && Array.to_list (Stream.to_array (mk ())) = reference
        && Array.to_list (Stream.pack_to_array (fun x -> x land 1 = 0) (mk ()))
           = List.filter (fun x -> x land 1 = 0) reference);
    Test.make ~name:"fold ~stop = trickle prefix" ~count:500
      QCheck2.Gen.(pair gen_chain (int_range 0 40))
      (fun (c, stop) ->
        let mk = mk_chain c in
        let stop = min stop (Stream.length (mk ())) in
        let prefix = List.filteri (fun i _ -> i < stop) (trickle_to_list (mk ())) in
        List.rev (Stream.fold (mk ()) ~stop (fun acc v -> v :: acc) []) = prefix);
  ]

(* The alternative pure state-passing encoding must agree with the
   trickle-closure encoding on every operation. *)
module SP = Bds_stream.Stream_pure

let test_pure_encoding () =
  check_ilist "tabulate" [ 0; 2; 4 ] (SP.to_list (SP.tabulate 3 (fun i -> 2 * i)));
  check_ilist "map" [ 1; 2; 3 ] (SP.to_list (SP.map (( + ) 1) (SP.tabulate 3 Fun.id)));
  check_ilist "mapi" [ 0; 11; 22 ]
    (SP.to_list (SP.mapi (fun i v -> i + v) (SP.tabulate 3 (fun i -> 10 * i))));
  check_ilist "scan" [ 0; 1; 3; 6 ]
    (SP.to_list (SP.scan ( + ) 0 (SP.tabulate 4 (fun i -> i + 1))));
  check_ilist "scan_incl" [ 1; 3; 6; 10 ]
    (SP.to_list (SP.scan_incl ( + ) 0 (SP.tabulate 4 (fun i -> i + 1))));
  Alcotest.(check int) "reduce" 4950 (SP.reduce ( + ) 0 (SP.tabulate 100 Fun.id));
  Alcotest.(check int_array) "to_array" [| 5; 6; 7 |]
    (SP.to_array (SP.of_array_slice [| 4; 5; 6; 7; 8 |] 1 3));
  let acc = ref [] in
  SP.iter (fun v -> acc := v :: !acc) (SP.tabulate 3 Fun.id);
  check_ilist "iter" [ 2; 1; 0 ] !acc

let pure_equiv_tests =
  let open QCheck2 in
  [
    Test.make ~name:"pure = trickle on random chains" ~count:300
      Gen.(pair small_int_array (int_range (-5) 5))
      (fun (a, k) ->
        let with_trickle =
          let open Stream in
          to_list (scan_incl ( + ) k (map (fun x -> x - k) (of_array a)))
        in
        let with_pure =
          let open SP in
          to_list (scan_incl ( + ) k (map (fun x -> x - k) (of_array a)))
        in
        with_trickle = with_pure);
    Test.make ~name:"pure zip_with = trickle zip_with" ~count:200 small_int_array
      (fun a ->
        Stream.(to_list (zip_with ( * ) (of_array a) (of_array a)))
        = SP.(to_list (zip_with ( * ) (of_array a) (of_array a))));
  ]

let () =
  Alcotest.run "stream"
    [
      ( "stream",
        [
          Alcotest.test_case "tabulate" `Quick test_tabulate;
          Alcotest.test_case "map/zip" `Quick test_map_zip;
          Alcotest.test_case "mapi" `Quick test_mapi;
          Alcotest.test_case "scans" `Quick test_scans;
          Alcotest.test_case "reduce" `Quick test_reduce;
          Alcotest.test_case "pack" `Quick test_pack;
          Alcotest.test_case "take" `Quick test_take;
          Alcotest.test_case "of_array_slice" `Quick test_of_array_slice;
          Alcotest.test_case "to_list order" `Quick test_to_list_order;
          Alcotest.test_case "laziness" `Quick test_laziness;
          Alcotest.test_case "iter/iteri" `Quick test_iter_iteri;
          Alcotest.test_case "equal" `Quick test_equal;
          Alcotest.test_case "fold with stop" `Quick test_fold_stop;
          Alcotest.test_case "is_fused flag" `Quick test_is_fused;
          Alcotest.test_case "fold poll cadence" `Quick test_fold_poll_cadence;
          Alcotest.test_case "of_segments" `Quick test_of_segments;
          Alcotest.test_case "selected_region" `Quick test_selected_region;
          Alcotest.test_case "region poll cadence" `Quick test_region_poll_cadence;
          Alcotest.test_case "buffer_ext" `Quick test_buffer;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests);
      ( "push/pull",
        List.map (QCheck_alcotest.to_alcotest ~long:false) push_pull_tests );
      ( "pure encoding",
        Alcotest.test_case "operations" `Quick test_pure_encoding
        :: List.map (QCheck_alcotest.to_alcotest ~long:false) pure_equiv_tests );
    ]
