(* Telemetry counters and the Chrome-trace recorder.

   Counter tests only assert *monotone lower bounds* (snapshots read
   other domains' counters without synchronization), never exact values:
   the chaos stress runs re-execute this suite with fault injection, and
   the pool's own background activity (steal attempts while idle) also
   moves the counters. *)

module Runtime = Bds_runtime.Runtime
module Telemetry = Bds_runtime.Telemetry
module Trace = Bds_runtime.Trace
open Bds_test_util

let snap = Telemetry.snapshot

(* A snapshot never decreases, and running real parallel work strictly
   increases the task/chunk counters. *)
let test_monotone () =
  init ();
  let s0 = snap () in
  let n = 100_000 in
  let sum =
    Runtime.parallel_for_reduce ~grain:1000 0 n ~combine:( + ) ~init:0 Fun.id
  in
  Alcotest.(check int) "sum" (n * (n - 1) / 2) sum;
  let s1 = snap () in
  let le a b = List.for_all2 (fun (_, x) (_, y) -> x <= y)
      (Telemetry.to_assoc a) (Telemetry.to_assoc b)
  in
  Alcotest.(check bool) "monotone" true (le s0 s1);
  let d = Telemetry.diff ~before:s0 ~after:s1 in
  Alcotest.(check bool) "spawned tasks" true (d.Telemetry.s_tasks_spawned > 0);
  Alcotest.(check bool) "executed chunks" true
    (d.Telemetry.s_chunks_executed >= 99 (* ~n/grain, minus boundary *));
  Alcotest.(check bool) "polled cancellation" true (d.Telemetry.s_cancel_polls > 0)

(* diff clamps at zero even for inverted snapshot pairs (racy lag). *)
let test_diff_clamps () =
  init ();
  let before = snap () in
  Runtime.apply 64 (fun _ -> ());
  let after = snap () in
  let inverted = Telemetry.diff ~before:after ~after:before in
  List.iter
    (fun (k, v) -> Alcotest.(check int) ("clamped " ^ k) 0 v)
    (Telemetry.to_assoc inverted);
  let d = Telemetry.diff ~before ~after in
  Alcotest.(check bool) "forward diff nonneg" true
    (List.for_all (fun (_, v) -> v >= 0) (Telemetry.to_assoc d))

(* to_assoc has a fixed key order: bds_probe's stats output (pinned by a
   cram test) and any CSV consumer rely on it. *)
let test_assoc_order () =
  let keys = List.map fst (Telemetry.to_assoc (snap ())) in
  Alcotest.(check (list string)) "key order"
    [
      "tasks_spawned"; "steal_attempts"; "steals"; "overflow_pushes";
      "chunks_executed"; "cancel_polls"; "cancel_trips"; "chaos_injections";
      "fused_folds"; "trickle_fallbacks"; "float_fast_path";
      "float_boxed_fallback"; "shared_forces"; "jobs_admitted"; "jobs_completed";
      "jobs_cancelled"; "jobs_deadline_exceeded"; "jobs_failed";
      "jobs_retried"; "jobs_shed"; "jobs_retries_shed"; "adapt_adjustments";
      "adapt_probes";
    ]
    keys;
  let s = Telemetry.pp (snap ()) in
  Alcotest.(check bool) "pp mentions every key" true
    (List.for_all
       (fun k ->
         (* naive substring check *)
         let rec has i =
           i + String.length k <= String.length s
           && (String.sub s i (String.length k) = k || has (i + 1))
         in
         has 0)
       keys)

(* The exposed grain policy: ~32 leaf chunks per worker, floor 1. *)
let test_auto_grain () =
  init ();
  let w = Runtime.num_workers () in
  Alcotest.(check int) "large n" (1_000_000 / (32 * w)) (Runtime.auto_grain 1_000_000);
  Alcotest.(check int) "small n floors at 1" 1 (Runtime.auto_grain 10);
  Alcotest.(check int) "zero" 1 (Runtime.auto_grain 0)

(* Trace round-trip: enable tracing, run every Runtime combinator, flush,
   and validate the JSON with the same checker `bds_probe trace-check`
   uses.  Runs combinators on the test pool; Trace state is global. *)
let test_trace_roundtrip () =
  init ();
  let file = Filename.temp_file "bds_trace" ".json" in
  Fun.protect
    ~finally:(fun () ->
      Trace.set_output None;
      Sys.remove file)
    (fun () ->
      Trace.set_output (Some file);
      Trace.reset ();
      let a, b = Runtime.par (fun () -> 1) (fun () -> 2) in
      Alcotest.(check int) "par" 3 (a + b);
      Runtime.parallel_for ~grain:100 0 1_000 (fun _ -> ());
      Runtime.parallel_for_lazy ~chunk:64 0 1_000 (fun _ -> ());
      let s = Runtime.parallel_for_reduce ~grain:100 0 1_000 ~combine:( + ) ~init:0 Fun.id in
      Alcotest.(check int) "reduce" 499_500 s;
      Trace.flush ();
      (match Trace.validate_file file with
      | Ok n -> Alcotest.(check bool) "events recorded" true (n >= 4)
      | Error e -> Alcotest.failf "invalid trace: %s" e);
      let names = List.map fst (Trace.For_testing.events ()) in
      List.iter
        (fun expected ->
          Alcotest.(check bool) ("span " ^ expected) true (List.mem expected names))
        [ "par"; "parallel_for"; "parallel_for_lazy"; "parallel_for_reduce"; "chunk" ])

(* The validator rejects malformed traces (it guards the cram test and
   `make trace-smoke`, so it must actually discriminate). *)
let test_validator_rejects () =
  let bad s =
    match Trace.validate_string s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "not json" true (bad "{");
  Alcotest.(check bool) "not an object" true (bad "[1,2]");
  Alcotest.(check bool) "missing traceEvents" true (bad {|{"foo":[]}|});
  Alcotest.(check bool) "traceEvents not array" true (bad {|{"traceEvents":3}|});
  Alcotest.(check bool) "event missing fields" true
    (bad {|{"traceEvents":[{"name":"x"}]}|});
  Alcotest.(check bool) "X event missing ts/dur" true
    (bad {|{"traceEvents":[{"name":"x","ph":"X","pid":1,"tid":0}]}|});
  Alcotest.(check bool) "minimal valid" false
    (bad {|{"traceEvents":[{"name":"x","ph":"M","pid":1,"tid":0}]}|})

(* Tracing off: with_span must still run the thunk and propagate
   exceptions (the zero-overhead path is also the common path). *)
let test_disabled_passthrough () =
  Trace.set_output None;
  Alcotest.(check int) "value" 7 (Trace.with_span "x" (fun () -> 7));
  Alcotest.check_raises "exception" Exit (fun () ->
      Trace.with_span "x" (fun () -> raise Exit))

let () =
  init ();
  Alcotest.run "telemetry"
    [
      ( "counters",
        [
          Alcotest.test_case "monotone snapshots" `Quick test_monotone;
          Alcotest.test_case "diff clamps at zero" `Quick test_diff_clamps;
          Alcotest.test_case "to_assoc order is fixed" `Quick test_assoc_order;
          Alcotest.test_case "auto_grain policy" `Quick test_auto_grain;
        ] );
      ( "trace",
        [
          Alcotest.test_case "roundtrip through validator" `Quick test_trace_roundtrip;
          Alcotest.test_case "validator rejects malformed" `Quick test_validator_rejects;
          Alcotest.test_case "disabled is a passthrough" `Quick test_disabled_passthrough;
        ] );
    ]
