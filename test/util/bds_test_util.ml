(* Shared helpers for the test suites. *)

let domains = 3

(* Idempotent: every suite runs on a small oversubscribed pool so that the
   work-stealing paths are exercised even on a single-core machine. *)
let init =
  let done_ = ref false in
  fun () ->
    if not !done_ then begin
      Bds_runtime.Runtime.set_num_domains domains;
      done_ := true
    end

(* Run [f] under a block-size policy, restoring the previous policy. *)
let with_policy p f =
  let old = Bds.Block.get_policy () in
  Bds.Block.set_policy p;
  Fun.protect ~finally:(fun () -> Bds.Block.set_policy old) f

(* Run [f] under a leaf-grain override ([None] = the heuristic),
   restoring the previous override. *)
let with_grain g f =
  let old = Bds_runtime.Grain.leaf_grain_override () in
  Bds_runtime.Grain.set_leaf_grain g;
  Fun.protect ~finally:(fun () -> Bds_runtime.Grain.set_leaf_grain old) f

(* Exercise a check under several block-size policies, including
   degenerate ones. *)
let policies =
  [
    ("B=1", Bds.Block.Fixed 1);
    ("B=3", Bds.Block.Fixed 3);
    ("B=64", Bds.Block.Fixed 64);
    ("B=10000", Bds.Block.Fixed 10000);
    ("scaled", Bds.Block.default_policy);
  ]

let for_all_policies f =
  List.iter (fun (name, p) -> with_policy p (fun () -> f name)) policies

(* Alcotest testables. *)
let int_array = Alcotest.(array int)
let int_list = Alcotest.(list int)

(* Exclusive scan reference on lists. *)
let list_scan f z l =
  let rec go acc = function
    | [] -> ([], acc)
    | x :: tl ->
      let rest, total = go (f acc x) tl in
      (acc :: rest, total)
  in
  go z l

(* Inclusive scan reference on lists. *)
let list_scan_incl f z l =
  let rec go acc = function
    | [] -> []
    | x :: tl ->
      let acc = f acc x in
      acc :: go acc tl
  in
  go z l

(* QCheck arbitrary for small int arrays (including empty). *)
let small_int_array =
  QCheck2.Gen.(array_size (int_bound 200) (int_range (-100) 100))
